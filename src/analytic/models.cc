#include "analytic/models.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace vmp::analytic
{

MissCostModel::MissCostModel(const proto::SoftwareTiming &software,
                             const mem::BusTiming &bus)
    : software_(software), bus_(bus)
{
}

MissCost
MissCostModel::perMiss(std::uint32_t page_bytes,
                       bool victim_dirty) const
{
    const double read_us = toUsec(bus_.blockNs(page_bytes));
    const double wb_us =
        victim_dirty ? toUsec(bus_.blockNs(page_bytes)) : 0.0;
    const double overlap_us = toUsec(software_.overlapNs);

    MissCost cost;
    // Software runs trapEntry, then overlapNs of bookkeeping overlapped
    // with the victim write-back, then the serial remainder, then waits
    // out the fill transfer (Section 5.1 / Table 1).
    cost.elapsedUs = toUsec(software_.trapEntryNs) +
        std::max(overlap_us, wb_us) + toUsec(software_.postNs) +
        read_us;
    cost.busUs = read_us + wb_us;
    return cost;
}

MissCost
MissCostModel::average(std::uint32_t page_bytes,
                       double clean_fraction) const
{
    if (clean_fraction < 0.0 || clean_fraction > 1.0)
        fatal("clean fraction must be in [0, 1]");
    const MissCost clean = perMiss(page_bytes, false);
    const MissCost dirty = perMiss(page_bytes, true);
    MissCost avg;
    avg.elapsedUs = clean_fraction * clean.elapsedUs +
        (1.0 - clean_fraction) * dirty.elapsedUs;
    avg.busUs = clean_fraction * clean.busUs +
        (1.0 - clean_fraction) * dirty.busUs;
    return avg;
}

PerfModel::PerfModel(const MissCostModel &costs,
                     const cpu::M68020Timing &timing)
    : costs_(costs), timing_(timing)
{
}

double
PerfModel::performance(std::uint32_t page_bytes, double m,
                       double clean_fraction) const
{
    if (m < 0.0 || m > 1.0)
        fatal("miss ratio must be in [0, 1]");
    const double cost_us =
        costs_.average(page_bytes, clean_fraction).elapsedUs;
    // mips() is instructions per microsecond.
    const double x =
        m * timing_.refsPerInstr * timing_.mips() * cost_us;
    return 1.0 / (1.0 + x);
}

double
PerfModel::missRatioFor(std::uint32_t page_bytes, double target,
                        double clean_fraction) const
{
    if (target <= 0.0 || target > 1.0)
        fatal("performance target must be in (0, 1]");
    const double cost_us =
        costs_.average(page_bytes, clean_fraction).elapsedUs;
    return (1.0 / target - 1.0) /
        (timing_.refsPerInstr * timing_.mips() * cost_us);
}

BusModel::BusModel(const MissCostModel &costs,
                   const cpu::M68020Timing &timing)
    : costs_(costs), timing_(timing)
{
}

double
BusModel::utilization(std::uint32_t page_bytes, double m,
                      double clean_fraction) const
{
    if (m < 0.0 || m > 1.0)
        fatal("miss ratio must be in [0, 1]");
    const MissCost avg = costs_.average(page_bytes, clean_fraction);
    // Time per reference at full speed, in microseconds.
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    return (m * avg.busUs) / (ref_us + m * avg.elapsedUs);
}

QueuingModel::QueuingModel(const MissCostModel &costs,
                           const cpu::M68020Timing &timing)
    : costs_(costs), timing_(timing)
{
}

double
QueuingModel::offeredLoad(std::uint32_t page_bytes, double m,
                          unsigned n) const
{
    return static_cast<double>(n) *
        BusModel(costs_, timing_).utilization(page_bytes, m);
}

double
QueuingModel::perProcessorPerformance(std::uint32_t page_bytes,
                                      double m, unsigned n) const
{
    if (n == 0)
        fatal("queuing model needs at least one processor");
    const MissCost avg = costs_.average(page_bytes);
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    const double s = avg.busUs; // bus service time per miss

    // Fixed point: queueing delay inflates per-miss time, which lowers
    // the offered rate, which lowers the delay. Iterate to
    // convergence; cap utilization below saturation.
    double wait_us = 0.0;
    for (int iter = 0; iter < 200; ++iter) {
        const double per_ref =
            ref_us + m * (avg.elapsedUs + wait_us);
        const double lambda = m / per_ref; // misses per us, per CPU
        double rho = static_cast<double>(n) * lambda * s;
        rho = std::min(rho, 0.999);
        // M/M/1 mean wait in queue.
        const double new_wait = rho * s / (1.0 - rho);
        if (std::abs(new_wait - wait_us) < 1e-9) {
            wait_us = new_wait;
            break;
        }
        wait_us = 0.5 * (wait_us + new_wait);
    }

    const double per_ref = ref_us + m * (avg.elapsedUs + wait_us);
    return ref_us / per_ref;
}

double
QueuingModel::systemThroughput(std::uint32_t page_bytes, double m,
                               unsigned n) const
{
    return static_cast<double>(n) *
        perProcessorPerformance(page_bytes, m, n);
}

unsigned
QueuingModel::maxProcessors(std::uint32_t page_bytes, double m,
                            double degradation_limit,
                            unsigned hard_cap) const
{
    const double solo = perProcessorPerformance(page_bytes, m, 1);
    unsigned best = 1;
    for (unsigned n = 1; n <= hard_cap; ++n) {
        const double perf =
            perProcessorPerformance(page_bytes, m, n);
        if (perf / solo < degradation_limit)
            break;
        best = n;
    }
    return best;
}

HierQueuingModel::HierQueuingModel(const MissCostModel &costs,
                                   const cpu::M68020Timing &timing,
                                   const IbcCostModel &ibc)
    : costs_(costs), timing_(timing), ibc_(ibc)
{
}

HierQueuingModel::Equilibrium
HierQueuingModel::solve(std::uint32_t page_bytes, double m, double g,
                        unsigned clusters,
                        unsigned cpus_per_cluster) const
{
    if (clusters == 0 || cpus_per_cluster == 0)
        fatal("hier queuing model needs at least one cluster and CPU");
    if (g < 0.0 || g > 1.0)
        fatal("hier queuing model: g must be in [0, 1]");

    const MissCost avg = costs_.average(page_bytes);
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    const double n = static_cast<double>(cpus_per_cluster);
    const double kn = static_cast<double>(clusters) * n;
    /** Local/global bus occupancy per (thinned) miss. */
    const double s_l = avg.busUs;
    const double s_g = avg.busUs;
    /** Extra elapsed time of a cluster-level miss: the board's
     *  dispatch + global transfer + install, plus half a mean back-off
     *  for the local retry the aborted first attempt costs. */
    const double x_g = ibc_.serviceUs + s_g + ibc_.installUs +
        0.5 * ibc_.retryMeanUs;

    double wait_l = 0.0;
    double wait_g = 0.0;
    double rho_l = 0.0;
    double rho_g = 0.0;
    double per_ref = ref_us;
    for (int iter = 0; iter < 300; ++iter) {
        per_ref = ref_us + m * (avg.elapsedUs + wait_l) +
            m * g * (x_g + wait_g);
        const double lambda = m / per_ref; // local misses/us, per CPU
        rho_l = std::min(n * lambda * s_l, 0.999);
        rho_g = std::min(kn * lambda * g * s_g, 0.999);
        const double new_wait_l = rho_l * s_l / (1.0 - rho_l);
        const double new_wait_g = rho_g * s_g / (1.0 - rho_g);
        if (std::abs(new_wait_l - wait_l) < 1e-9 &&
            std::abs(new_wait_g - wait_g) < 1e-9) {
            wait_l = new_wait_l;
            wait_g = new_wait_g;
            break;
        }
        wait_l = 0.5 * (wait_l + new_wait_l);
        wait_g = 0.5 * (wait_g + new_wait_g);
    }

    Equilibrium eq;
    eq.perRefUs = ref_us + m * (avg.elapsedUs + wait_l) +
        m * g * (x_g + wait_g);
    eq.rhoLocal = rho_l;
    eq.rhoGlobal = rho_g;
    return eq;
}

double
HierQueuingModel::perProcessorPerformance(
    std::uint32_t page_bytes, double m, double g, unsigned clusters,
    unsigned cpus_per_cluster) const
{
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    return ref_us /
        solve(page_bytes, m, g, clusters, cpus_per_cluster).perRefUs;
}

double
HierQueuingModel::systemThroughput(std::uint32_t page_bytes, double m,
                                   double g, unsigned clusters,
                                   unsigned cpus_per_cluster) const
{
    return static_cast<double>(clusters) *
        static_cast<double>(cpus_per_cluster) *
        perProcessorPerformance(page_bytes, m, g, clusters,
                                cpus_per_cluster);
}

double
HierQueuingModel::refsPerSecond(std::uint32_t page_bytes, double m,
                                double g, unsigned clusters,
                                unsigned cpus_per_cluster) const
{
    const double refs_per_us_full =
        timing_.mips() * timing_.refsPerInstr;
    return systemThroughput(page_bytes, m, g, clusters,
                            cpus_per_cluster) *
        refs_per_us_full * 1e6;
}

double
HierQueuingModel::localUtilization(std::uint32_t page_bytes, double m,
                                   double g, unsigned clusters,
                                   unsigned cpus_per_cluster) const
{
    return solve(page_bytes, m, g, clusters, cpus_per_cluster).rhoLocal;
}

double
HierQueuingModel::globalUtilization(std::uint32_t page_bytes, double m,
                                    double g, unsigned clusters,
                                    unsigned cpus_per_cluster) const
{
    return solve(page_bytes, m, g, clusters, cpus_per_cluster)
        .rhoGlobal;
}

} // namespace vmp::analytic
