#include "analytic/models.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace vmp::analytic
{
namespace
{

/** Result of the exact MVA recursion for one closed single-queue
 *  network: response time R per visit and throughput X (visits/us). */
struct MvaPoint
{
    double r = 0.0;
    double x = 0.0;
};

/**
 * Exact MVA for n customers cycling between think time @p z and a
 * single queueing server with mean demand @p s (both in us).
 */
MvaPoint
mvaSolve(double s, double z, unsigned n)
{
    MvaPoint point;
    double queue = 0.0;
    point.r = s;
    for (unsigned i = 1; i <= n; ++i) {
        point.r = s * (1.0 + queue);
        point.x = static_cast<double>(i) / (z + point.r);
        queue = point.x * point.r;
    }
    return point;
}

} // namespace

void
BusLoadProfile::check() const
{
    if (missRatio < 0.0 || missRatio > 1.0)
        fatal("bus load profile: miss ratio must be in [0, 1]");
    if (upgradeFraction < 0.0 || upgradeFraction > 1.0)
        fatal("bus load profile: upgrade fraction must be in [0, 1]");
    if (writeBackRatio < 0.0 || writeBackRatio > 1.0)
        fatal("bus load profile: write-back ratio must be in [0, 1]");
}

MissCostModel::MissCostModel(const proto::SoftwareTiming &software,
                             const mem::BusTiming &bus)
    : software_(software), bus_(bus)
{
}

MissCost
MissCostModel::perMiss(std::uint32_t page_bytes,
                       bool victim_dirty) const
{
    const double read_us = toUsec(bus_.blockNs(page_bytes));
    const double wb_us =
        victim_dirty ? toUsec(bus_.blockNs(page_bytes)) : 0.0;
    const double overlap_us = toUsec(software_.overlapNs);

    MissCost cost;
    // Software runs trapEntry, then overlapNs of bookkeeping overlapped
    // with the victim write-back, then the serial remainder, then waits
    // out the fill transfer (Section 5.1 / Table 1).
    cost.elapsedUs = toUsec(software_.trapEntryNs) +
        std::max(overlap_us, wb_us) + toUsec(software_.postNs) +
        read_us;
    cost.busUs = read_us + wb_us;
    return cost;
}

MissCost
MissCostModel::average(std::uint32_t page_bytes,
                       double clean_fraction) const
{
    if (clean_fraction < 0.0 || clean_fraction > 1.0)
        fatal("clean fraction must be in [0, 1]");
    const MissCost clean = perMiss(page_bytes, false);
    const MissCost dirty = perMiss(page_bytes, true);
    MissCost avg;
    avg.elapsedUs = clean_fraction * clean.elapsedUs +
        (1.0 - clean_fraction) * dirty.elapsedUs;
    avg.busUs = clean_fraction * clean.busUs +
        (1.0 - clean_fraction) * dirty.busUs;
    return avg;
}

PerfModel::PerfModel(const MissCostModel &costs,
                     const cpu::M68020Timing &timing)
    : costs_(costs), timing_(timing)
{
}

double
PerfModel::performance(std::uint32_t page_bytes, double m,
                       double clean_fraction) const
{
    if (m < 0.0 || m > 1.0)
        fatal("miss ratio must be in [0, 1]");
    const double cost_us =
        costs_.average(page_bytes, clean_fraction).elapsedUs;
    // mips() is instructions per microsecond.
    const double x =
        m * timing_.refsPerInstr * timing_.mips() * cost_us;
    return 1.0 / (1.0 + x);
}

double
PerfModel::missRatioFor(std::uint32_t page_bytes, double target,
                        double clean_fraction) const
{
    if (target <= 0.0 || target > 1.0)
        fatal("performance target must be in (0, 1]");
    const double cost_us =
        costs_.average(page_bytes, clean_fraction).elapsedUs;
    return (1.0 / target - 1.0) /
        (timing_.refsPerInstr * timing_.mips() * cost_us);
}

BusModel::BusModel(const MissCostModel &costs,
                   const cpu::M68020Timing &timing)
    : costs_(costs), timing_(timing)
{
}

double
BusModel::utilization(std::uint32_t page_bytes, double m,
                      double clean_fraction) const
{
    if (m < 0.0 || m > 1.0)
        fatal("miss ratio must be in [0, 1]");
    const MissCost avg = costs_.average(page_bytes, clean_fraction);
    // Time per reference at full speed, in microseconds.
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    return (m * avg.busUs) / (ref_us + m * avg.elapsedUs);
}

QueuingModel::QueuingModel(const MissCostModel &costs,
                           const cpu::M68020Timing &timing)
    : costs_(costs), timing_(timing)
{
}

double
QueuingModel::offeredLoad(std::uint32_t page_bytes, double m,
                          unsigned n) const
{
    return static_cast<double>(n) *
        BusModel(costs_, timing_).utilization(page_bytes, m);
}

double
QueuingModel::perProcessorPerformance(std::uint32_t page_bytes,
                                      double m, unsigned n) const
{
    return predict(page_bytes, m, n).perProcessorPerformance;
}

QueuingModel::Prediction
QueuingModel::predict(std::uint32_t page_bytes, double m,
                      unsigned n) const
{
    if (n == 0)
        fatal("queuing model needs at least one processor");
    const MissCost avg = costs_.average(page_bytes);
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    const double s = avg.busUs; // bus service time per miss

    // Fixed point: queueing delay inflates per-miss time, which lowers
    // the offered rate, which lowers the delay. Iterate to
    // convergence; cap utilization below saturation. The cap keeps the
    // iterate finite when an intermediate rho reaches 1, but a capped
    // operating point is outside the open-arrival domain — that is
    // what the saturated flag reports.
    Prediction out;
    double wait_us = 0.0;
    double rho = 0.0;
    bool converged = false;
    for (int iter = 0; iter < 200; ++iter) {
        const double per_ref =
            ref_us + m * (avg.elapsedUs + wait_us);
        const double lambda = m / per_ref; // misses per us, per CPU
        rho = std::min(static_cast<double>(n) * lambda * s, 0.999);
        // M/M/1 mean wait in queue.
        const double new_wait = rho * s / (1.0 - rho);
        if (std::abs(new_wait - wait_us) < 1e-9) {
            wait_us = new_wait;
            converged = true;
            break;
        }
        wait_us = 0.5 * (wait_us + new_wait);
    }

    const double per_ref = ref_us + m * (avg.elapsedUs + wait_us);
    out.waitUs = wait_us;
    out.perProcessorPerformance = ref_us / per_ref;
    out.systemThroughput =
        static_cast<double>(n) * out.perProcessorPerformance;
    out.domain.rho = rho;
    out.domain.converged = converged;
    out.domain.saturated = offeredLoad(page_bytes, m, n) >= 1.0;
    return out;
}

double
QueuingModel::systemThroughput(std::uint32_t page_bytes, double m,
                               unsigned n) const
{
    return static_cast<double>(n) *
        perProcessorPerformance(page_bytes, m, n);
}

unsigned
QueuingModel::maxProcessors(std::uint32_t page_bytes, double m,
                            double degradation_limit,
                            unsigned hard_cap) const
{
    const double solo = perProcessorPerformance(page_bytes, m, 1);
    unsigned best = 1;
    for (unsigned n = 1; n <= hard_cap; ++n) {
        const double perf =
            perProcessorPerformance(page_bytes, m, n);
        if (perf / solo < degradation_limit)
            break;
        best = n;
    }
    return best;
}

MvaModel::MvaModel(mem::Arbitration discipline,
                   unsigned priority_levels,
                   const MissCostModel &costs,
                   const cpu::M68020Timing &timing)
    : discipline_(discipline), priorityLevels_(priority_levels),
      costs_(costs), timing_(timing)
{
    mem::ArbitrationConfig cfg;
    cfg.discipline = discipline;
    cfg.priorityLevels = priority_levels;
    cfg.check();
}

double
MvaModel::serviceDemandUs(std::uint32_t page_bytes,
                          const BusLoadProfile &load) const
{
    load.check();
    const double read_us = toUsec(costs_.bus().blockNs(page_bytes));
    const double short_us = toUsec(costs_.bus().shortTxNs);
    // A fill moves one page, an upgrade is one short AssertOwnership
    // transaction, and every victim write-back moves one page.
    return (1.0 - load.upgradeFraction) * read_us +
        load.writeBackRatio * read_us +
        load.upgradeFraction * short_us;
}

double
MvaModel::missElapsedUs(std::uint32_t page_bytes,
                        const BusLoadProfile &load) const
{
    load.check();
    const double fill = 1.0 - load.upgradeFraction;
    double fill_elapsed = 0.0;
    if (fill > 0.0) {
        // Table 1 splits fills by victim state; express the measured
        // write-back ratio as write-backs per fill.
        const double wb_per_fill =
            std::min(load.writeBackRatio / fill, 1.0);
        fill_elapsed = (1.0 - wb_per_fill) *
                costs_.perMiss(page_bytes, false).elapsedUs +
            wb_per_fill * costs_.perMiss(page_bytes, true).elapsedUs;
    }
    // An upgrade stays in the ownership-assertion fast path: no trap
    // handler, one short bus transaction.
    const double upgrade_elapsed =
        toUsec(costs_.software().ownershipNs) +
        toUsec(costs_.bus().shortTxNs);
    return fill * fill_elapsed +
        load.upgradeFraction * upgrade_elapsed;
}

MvaModel::Prediction
MvaModel::predict(std::uint32_t page_bytes,
                  const BusLoadProfile &load, unsigned n) const
{
    if (n == 0)
        fatal("MVA model needs at least one processor");
    load.check();
    const double m = load.missRatio;
    Prediction out;
    if (m <= 0.0) {
        out.systemThroughput = static_cast<double>(n);
        return out;
    }

    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    const double s = serviceDemandUs(page_bytes, load);
    const double elapsed = missElapsedUs(page_bytes, load);
    // Think time between bus visits: execution until the next miss
    // plus the non-bus part of servicing it.
    const double z = ref_us / m + elapsed - s;
    const MvaPoint point = mvaSolve(s, z, n);

    out.waitUs = point.r - s;
    out.busUtilization = point.x * s;
    out.perProcessorPerformance = ref_us / (m * (z + point.r));
    out.systemThroughput =
        static_cast<double>(n) * out.perProcessorPerformance;
    out.domain.rho = out.busUtilization;

    if (discipline_ == mem::Arbitration::Priority) {
        // Work conservation fixes the aggregate mean wait; split it
        // across bus-request levels with non-preemptive head-of-line
        // M/G/1 ratios: W_l ~ 1 / ((1 - H_l)(1 - H_l - rho_l)), H_l
        // the utilization of strictly higher levels. Both factors stay
        // positive because the closed network keeps rho < 1.
        const unsigned levels = priorityLevels_;
        std::vector<double> population(levels, 0.0);
        for (unsigned id = 0; id < n; ++id)
            population[id % levels] += 1.0;
        const double rho = out.busUtilization;
        std::vector<double> shape(levels, 0.0);
        double weighted = 0.0;
        double higher = 0.0;
        for (unsigned l = levels; l-- > 0;) {
            const double rho_l =
                rho * population[l] / static_cast<double>(n);
            shape[l] =
                1.0 / ((1.0 - higher) * (1.0 - higher - rho_l));
            weighted +=
                population[l] / static_cast<double>(n) * shape[l];
            higher += rho_l;
        }
        const double scale =
            weighted > 0.0 ? out.waitUs / weighted : 0.0;
        out.levelWaitUs.assign(levels, 0.0);
        out.levelPerformance.assign(levels, 0.0);
        for (unsigned l = 0; l < levels; ++l) {
            if (population[l] == 0.0)
                continue; // empty levels report zero
            out.levelWaitUs[l] = scale * shape[l];
            out.levelPerformance[l] =
                ref_us / (m * (z + s + out.levelWaitUs[l]));
        }
    }
    return out;
}

double
MvaModel::perProcessorPerformance(std::uint32_t page_bytes,
                                  const BusLoadProfile &load,
                                  unsigned n) const
{
    return predict(page_bytes, load, n).perProcessorPerformance;
}

double
MvaModel::systemThroughput(std::uint32_t page_bytes,
                           const BusLoadProfile &load,
                           unsigned n) const
{
    return predict(page_bytes, load, n).systemThroughput;
}

double
MvaModel::busUtilization(std::uint32_t page_bytes,
                         const BusLoadProfile &load, unsigned n) const
{
    return predict(page_bytes, load, n).busUtilization;
}

HierQueuingModel::HierQueuingModel(const MissCostModel &costs,
                                   const cpu::M68020Timing &timing,
                                   const IbcCostModel &ibc)
    : costs_(costs), timing_(timing), ibc_(ibc)
{
}

HierQueuingModel::Equilibrium
HierQueuingModel::solve(std::uint32_t page_bytes, double m, double g,
                        unsigned clusters,
                        unsigned cpus_per_cluster) const
{
    if (clusters == 0 || cpus_per_cluster == 0)
        fatal("hier queuing model needs at least one cluster and CPU");
    if (g < 0.0 || g > 1.0)
        fatal("hier queuing model: g must be in [0, 1]");

    const MissCost avg = costs_.average(page_bytes);
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    const double n = static_cast<double>(cpus_per_cluster);
    const double kn = static_cast<double>(clusters) * n;
    /** Local/global bus occupancy per (thinned) miss. */
    const double s_l = avg.busUs;
    const double s_g = avg.busUs;
    /** Extra elapsed time of a cluster-level miss: the board's
     *  dispatch + global transfer + install, plus half a mean back-off
     *  for the local retry the aborted first attempt costs. */
    const double x_g = ibc_.serviceUs + s_g + ibc_.installUs +
        0.5 * ibc_.retryMeanUs;

    double wait_l = 0.0;
    double wait_g = 0.0;
    double rho_l = 0.0;
    double rho_g = 0.0;
    double per_ref = ref_us;
    bool converged = false;
    for (int iter = 0; iter < 300; ++iter) {
        per_ref = ref_us + m * (avg.elapsedUs + wait_l) +
            m * g * (x_g + wait_g);
        const double lambda = m / per_ref; // local misses/us, per CPU
        rho_l = std::min(n * lambda * s_l, 0.999);
        rho_g = std::min(kn * lambda * g * s_g, 0.999);
        const double new_wait_l = rho_l * s_l / (1.0 - rho_l);
        const double new_wait_g = rho_g * s_g / (1.0 - rho_g);
        if (std::abs(new_wait_l - wait_l) < 1e-9 &&
            std::abs(new_wait_g - wait_g) < 1e-9) {
            wait_l = new_wait_l;
            wait_g = new_wait_g;
            converged = true;
            break;
        }
        wait_l = 0.5 * (wait_l + new_wait_l);
        wait_g = 0.5 * (wait_g + new_wait_g);
    }

    Equilibrium eq;
    eq.perRefUs = ref_us + m * (avg.elapsedUs + wait_l) +
        m * g * (x_g + wait_g);
    eq.rhoLocal = rho_l;
    eq.rhoGlobal = rho_g;
    eq.converged = converged;
    return eq;
}

double
HierQueuingModel::perProcessorPerformance(
    std::uint32_t page_bytes, double m, double g, unsigned clusters,
    unsigned cpus_per_cluster) const
{
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    return ref_us /
        solve(page_bytes, m, g, clusters, cpus_per_cluster).perRefUs;
}

double
HierQueuingModel::systemThroughput(std::uint32_t page_bytes, double m,
                                   double g, unsigned clusters,
                                   unsigned cpus_per_cluster) const
{
    return static_cast<double>(clusters) *
        static_cast<double>(cpus_per_cluster) *
        perProcessorPerformance(page_bytes, m, g, clusters,
                                cpus_per_cluster);
}

double
HierQueuingModel::refsPerSecond(std::uint32_t page_bytes, double m,
                                double g, unsigned clusters,
                                unsigned cpus_per_cluster) const
{
    const double refs_per_us_full =
        timing_.mips() * timing_.refsPerInstr;
    return systemThroughput(page_bytes, m, g, clusters,
                            cpus_per_cluster) *
        refs_per_us_full * 1e6;
}

double
HierQueuingModel::localUtilization(std::uint32_t page_bytes, double m,
                                   double g, unsigned clusters,
                                   unsigned cpus_per_cluster) const
{
    return solve(page_bytes, m, g, clusters, cpus_per_cluster).rhoLocal;
}

double
HierQueuingModel::globalUtilization(std::uint32_t page_bytes, double m,
                                    double g, unsigned clusters,
                                    unsigned cpus_per_cluster) const
{
    return solve(page_bytes, m, g, clusters, cpus_per_cluster)
        .rhoGlobal;
}

HierQueuingModel::Prediction
HierQueuingModel::predict(std::uint32_t page_bytes, double m, double g,
                          unsigned clusters,
                          unsigned cpus_per_cluster) const
{
    const Equilibrium eq =
        solve(page_bytes, m, g, clusters, cpus_per_cluster);
    const double ref_us =
        1.0 / (timing_.mips() * timing_.refsPerInstr);
    const double n = static_cast<double>(cpus_per_cluster);
    const double kn = static_cast<double>(clusters) * n;

    Prediction out;
    out.perProcessorPerformance = ref_us / eq.perRefUs;
    out.systemThroughput = kn * out.perProcessorPerformance;
    out.rhoLocal = eq.rhoLocal;
    out.rhoGlobal = eq.rhoGlobal;

    // Offered loads at zero wait decide whether the open-arrival
    // assumption holds at all (mirrors QueuingModel::predict).
    const MissCost avg = costs_.average(page_bytes);
    const double s_l = avg.busUs;
    const double s_g = avg.busUs;
    const double x_g = ibc_.serviceUs + s_g + ibc_.installUs +
        0.5 * ibc_.retryMeanUs;
    const double per_ref0 =
        ref_us + m * avg.elapsedUs + m * g * x_g;
    const double lambda0 = m / per_ref0;
    out.saturatedLocal = n * lambda0 * s_l >= 1.0;
    out.saturatedGlobal = kn * lambda0 * g * s_g >= 1.0;
    out.domain.saturated = out.saturatedLocal || out.saturatedGlobal;
    out.domain.converged = eq.converged;
    out.domain.rho = std::max(eq.rhoLocal, eq.rhoGlobal);
    return out;
}

HierQueuingModel::MvaPrediction
HierQueuingModel::predictMva(std::uint32_t page_bytes,
                             const BusLoadProfile &load, double g,
                             unsigned clusters,
                             unsigned cpus_per_cluster) const
{
    if (clusters == 0 || cpus_per_cluster == 0)
        fatal("hier queuing model needs at least one cluster and CPU");
    if (g < 0.0 || g > 1.0)
        fatal("hier queuing model: g must be in [0, 1]");
    load.check();

    const double m = load.missRatio;
    const unsigned n = cpus_per_cluster;
    const unsigned kn = clusters * cpus_per_cluster;
    const double refs_per_us_full =
        timing_.mips() * timing_.refsPerInstr;
    const double ref_us = 1.0 / refs_per_us_full;

    MvaPrediction out;
    if (m <= 0.0) {
        out.systemThroughput = static_cast<double>(kn);
        out.refsPerSecond = out.systemThroughput * refs_per_us_full *
            1e6;
        return out;
    }

    // Per-discipline service curves come from the flat MvaModel; the
    // coupling below uses the mean waits, which all disciplines share
    // for symmetric customers.
    const MvaModel local(mem::Arbitration::Fifo, 4, costs_, timing_);
    const double s_l = local.serviceDemandUs(page_bytes, load);
    const double elapsed = local.missElapsedUs(page_bytes, load);
    /** Global transfers move whole pages regardless of the local
     *  upgrade mix — an upgrade resolves within its cluster. */
    const double s_g = toUsec(costs_.bus().blockNs(page_bytes));
    const double short_us = toUsec(costs_.bus().shortTxNs);
    /** One full miss-handler pass: trap entry, bookkeeping (the
     *  victim is gone after the first pass, so only the overlapped
     *  part remains), serial remainder. Every retry of an aborted
     *  fill re-traps and re-runs all of it. */
    const double serial_sw = toUsec(costs_.software().trapEntryNs) +
        toUsec(costs_.software().overlapNs) +
        toUsec(costs_.software().postNs);
    /** Board time from picking up a fetch word to the frame being
     *  usable, excluding queueing: dispatch, global round trip,
     *  install. The global wait term joins inside the iteration. */
    const double x_board0 = ibc_.serviceUs + s_g + ibc_.installUs;

    // Joint fixed point over three centers: the local bus (n CPU
    // customers), the inter-bus board (single server, n customers),
    // and the global bus (k board customers — each board serializes
    // its own global requests). A CPU rides out the board's work in
    // full miss-handler retry loops, so its per-global-miss delay is
    // the loop period times the expected loop count.
    double r_l = s_l;
    double w_g = 0.0;     // global bus queueing wait per transfer
    double w_ibc = 0.0;   // board queueing wait per request
    double rho_ibc = 0.0;
    double x_local = 0.0;
    double x_global = 0.0;
    double loops = g > 0.0 ? 1.0 : 0.0;
    bool converged = false;
    double z_l = 0.0;
    double d_l = s_l;
    for (int iter = 0; iter < 400; ++iter) {
        // CPU retry loop period: back-off, servicing the own aborted
        // word, the full handler pass, winning the local bus, the
        // aborted transaction itself.
        const double loop_us = ibc_.retryMeanUs + ibc_.serviceUs +
            serial_sw + (r_l - d_l) + short_us;
        // Time until the board has the frame ready, measured from the
        // aborted first attempt.
        const double t_ready =
            w_ibc + ibc_.serviceUs + w_g + s_g + ibc_.installUs;
        // Expected loops: attempt i lands near i * loop_us; waits
        // beyond the deterministic part decay like the board's
        // residual busy period (PASTA: a fraction rho_ibc of misses
        // arrive to a busy board).
        double new_loops = 0.0;
        if (g > 0.0) {
            const double t_det = t_ready - w_ibc;
            const double busy_mean =
                rho_ibc > 1e-9 ? w_ibc / rho_ibc : 0.0;
            new_loops = 1.0;
            for (int k = 1; k <= 8; ++k) {
                const double t_k = static_cast<double>(k) * loop_us;
                if (t_k <= t_det)
                    new_loops += 1.0;
                else if (busy_mean > 1e-9)
                    new_loops += rho_ibc *
                        std::exp(-(t_k - t_det) / busy_mean);
            }
        }
        loops = 0.5 * (loops + new_loops);

        // Local bus: the fill/upgrade demand plus the aborted retry
        // attempts of the global misses.
        d_l = s_l + g * loops * short_us;
        z_l = ref_us / m + elapsed - s_l + g * loops * loop_us;
        const MvaPoint pl = mvaSolve(d_l, z_l, n);
        const double cycle = z_l + pl.r; // per-miss round trip

        double w_g_new = 0.0;
        double w_ibc_new = 0.0;
        double rho_ibc_new = 0.0;
        MvaPoint pg;
        if (g > 0.0) {
            // Inter-bus board: busy for the whole round trip of each
            // fetch plus the echo word of its own global transaction
            // and the spurious words the extra retry attempts queue.
            const double x_board = x_board0 + w_g +
                (1.0 + std::max(loops - 1.0, 0.0)) * ibc_.serviceUs;
            const double z_ibc =
                std::max(cycle / g - x_board, x_board);
            const MvaPoint pb = mvaSolve(x_board, z_ibc, n);
            w_ibc_new = pb.r - x_board;
            rho_ibc_new = pb.x * x_board;

            // Global bus: one customer per board.
            const double z_g = std::max(
                cycle / (static_cast<double>(n) * g) - (s_g + w_g),
                s_g);
            pg = mvaSolve(s_g, z_g, clusters);
            w_g_new = pg.r - s_g;
        }
        x_local = pl.x;
        x_global = pg.x;
        if (std::abs(pl.r - r_l) < 1e-9 &&
            std::abs(w_g_new - w_g) < 1e-9 &&
            std::abs(w_ibc_new - w_ibc) < 1e-9) {
            r_l = pl.r;
            w_g = w_g_new;
            w_ibc = w_ibc_new;
            rho_ibc = rho_ibc_new;
            converged = true;
            break;
        }
        r_l = 0.5 * (r_l + pl.r);
        w_g = 0.5 * (w_g + w_g_new);
        w_ibc = 0.5 * (w_ibc + w_ibc_new);
        rho_ibc = rho_ibc_new;
    }

    const double cycle = z_l + r_l;
    out.perProcessorPerformance = ref_us / (m * cycle);
    out.systemThroughput =
        static_cast<double>(kn) * out.perProcessorPerformance;
    out.refsPerSecond =
        out.systemThroughput * refs_per_us_full * 1e6;
    out.localWaitUs = r_l - d_l;
    out.globalWaitUs = w_g;
    out.ibcWaitUs = w_ibc;
    out.rhoLocal = x_local * d_l;
    out.rhoGlobal = g > 0.0 ? x_global * s_g : 0.0;
    out.rhoIbc = rho_ibc;
    out.loopsPerGlobalMiss = loops;
    // The loop estimate is a mean-value approximation: attempt times
    // are compared against the *mean* board readiness time. Once the
    // queueing waits in the global path exceed its deterministic
    // service, the true loop count is governed by wait variance
    // (bursty sibling misses pile onto the single-server board), which
    // this analysis underestimates — flag the prediction out of
    // domain rather than report an optimistic number.
    const double t_det = ibc_.serviceUs + s_g + ibc_.installUs;
    out.retryCascade =
        g > 0.0 && (loops > 2.0 || w_ibc + w_g > t_det);
    out.domain.converged = converged;
    out.domain.rho = std::max(out.rhoLocal, out.rhoGlobal);
    return out;
}

} // namespace vmp::analytic
