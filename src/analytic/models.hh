/**
 * @file
 * Closed-form performance models from Section 5 of the paper:
 *
 *  - MissCostModel: elapsed and bus time per cache miss (Table 1) and
 *    the 75%-clean-victim averages (Table 2);
 *  - PerfModel: processor performance as a function of miss ratio
 *    (Figure 3), normalized to 1 at zero misses;
 *  - BusModel: per-processor bus utilization as a function of miss
 *    ratio (Figure 5);
 *  - QueuingModel: the single-server (bus) multiple-client (CPUs)
 *    queueing estimate behind the "up to 5 processors" claim
 *    (Section 5.3).
 */

#ifndef VMP_ANALYTIC_MODELS_HH
#define VMP_ANALYTIC_MODELS_HH

#include <cstdint>

#include "cpu/timing.hh"
#include "mem/vme_bus.hh"
#include "proto/timing.hh"
#include "sim/types.hh"

namespace vmp::analytic
{

/** Per-miss elapsed and bus time, in microseconds. */
struct MissCost
{
    double elapsedUs = 0.0;
    double busUs = 0.0;
};

/**
 * Table 1/2 calculator: combines the software instruction budget with
 * the block-transfer timing.
 */
class MissCostModel
{
  public:
    MissCostModel(const proto::SoftwareTiming &software = {},
                  const mem::BusTiming &bus = {});

    /** Table 1 entry for one page size and victim state. */
    MissCost perMiss(std::uint32_t page_bytes, bool victim_dirty) const;

    /**
     * Table 2 entry: average cost with @p clean_fraction of replaced
     * pages unmodified (the paper assumes 0.75).
     */
    MissCost average(std::uint32_t page_bytes,
                     double clean_fraction = 0.75) const;

    const proto::SoftwareTiming &software() const { return software_; }
    const mem::BusTiming &bus() const { return bus_; }

  private:
    proto::SoftwareTiming software_;
    mem::BusTiming bus_;
};

/**
 * Figure 3: processor performance vs miss ratio.
 *
 *   perf(m) = 1 / (1 + m * refsPerInstr * instrRate * missCost)
 *
 * with missCost the Table 2 average elapsed time. At the paper's
 * example point (256-byte pages, m = 0.24%) this gives ~87%.
 */
class PerfModel
{
  public:
    PerfModel(const MissCostModel &costs = MissCostModel{},
              const cpu::M68020Timing &timing = {});

    /** Normalized performance at miss ratio @p m for @p page_bytes. */
    double performance(std::uint32_t page_bytes, double m,
                       double clean_fraction = 0.75) const;

    /** Miss ratio that degrades performance to @p target. */
    double missRatioFor(std::uint32_t page_bytes, double target,
                        double clean_fraction = 0.75) const;

  private:
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/**
 * Figure 5: single-processor bus utilization vs miss ratio.
 *
 *   util(m) = m * busTime / (1/(instrRate*refsPerInstr)
 *                            + m * elapsedTime)
 */
class BusModel
{
  public:
    BusModel(const MissCostModel &costs = MissCostModel{},
             const cpu::M68020Timing &timing = {});

    double utilization(std::uint32_t page_bytes, double m,
                       double clean_fraction = 0.75) const;

  private:
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/**
 * Section 5.3: M/M/1-style shared-bus congestion estimate. Each of n
 * processors offers bus work at rate lambda (misses/sec) with mean
 * service time s (bus time per miss); waiting inflates the effective
 * miss cost and thus degrades per-processor performance.
 */
class QueuingModel
{
  public:
    QueuingModel(const MissCostModel &costs = MissCostModel{},
                 const cpu::M68020Timing &timing = {});

    /** Aggregate offered bus utilization of n processors. */
    double offeredLoad(std::uint32_t page_bytes, double m,
                       unsigned n) const;

    /**
     * Expected per-processor performance with n processors sharing
     * the bus (M/M/1 waiting time added to each miss).
     */
    double perProcessorPerformance(std::uint32_t page_bytes, double m,
                                   unsigned n) const;

    /** Aggregate throughput in units of single-processor full speed. */
    double systemThroughput(std::uint32_t page_bytes, double m,
                            unsigned n) const;

    /**
     * Largest n whose per-processor performance stays above
     * @p degradation_limit of the 1-processor value. The paper's
     * parameters give about 5.
     */
    unsigned maxProcessors(std::uint32_t page_bytes, double m,
                           double degradation_limit = 0.9,
                           unsigned hard_cap = 64) const;

  private:
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/** Instruction-time budget of the inter-bus board software, in
 *  microseconds (mirrors hier::IbcTiming's defaults). */
struct IbcCostModel
{
    /** Dispatch + bookkeeping per serviced request word. */
    double serviceUs = 3.0;
    /** Image install + table update after a global fetch. */
    double installUs = 2.0;
    /** Mean back-off before retrying an aborted global transfer. */
    double retryMeanUs = 7.0;
};

/**
 * Two-level extension of the Section 5.3 queueing estimate for the
 * cluster hierarchy (HierVmpSystem): k clusters of n processors each.
 * Every local cache miss queues on the *local* bus (M/M/1 with n
 * clients); a fraction g of those misses also miss cluster-wide and
 * additionally queue on the *global* bus (M/M/1 with k*n clients
 * offering the g-thinned rate) plus the inter-bus board's software
 * budget. The two waiting times are coupled through the per-reference
 * time, so the model iterates both to a joint fixed point.
 *
 * The model is load-based, like its flat parent: it captures fetch
 * traffic but not data contention (ownership ping-pong), so it tracks
 * simulation best for partitioned or mostly-read-shared workloads —
 * the paper's own "providing data contention is not excessive" caveat.
 */
class HierQueuingModel
{
  public:
    HierQueuingModel(const MissCostModel &costs = MissCostModel{},
                     const cpu::M68020Timing &timing = {},
                     const IbcCostModel &ibc = {});

    /**
     * Expected per-processor performance, normalized to 1 at zero
     * misses. @p m is the per-CPU cache miss ratio and @p g the
     * fraction of those misses that miss cluster-wide (global fetches
     * per local miss).
     */
    double perProcessorPerformance(std::uint32_t page_bytes, double m,
                                   double g, unsigned clusters,
                                   unsigned cpus_per_cluster) const;

    /** Aggregate throughput in units of single-processor full speed. */
    double systemThroughput(std::uint32_t page_bytes, double m,
                            double g, unsigned clusters,
                            unsigned cpus_per_cluster) const;

    /** Aggregate simulated references per second. */
    double refsPerSecond(std::uint32_t page_bytes, double m, double g,
                         unsigned clusters,
                         unsigned cpus_per_cluster) const;

    /** Equilibrium local-bus utilization (one cluster). */
    double localUtilization(std::uint32_t page_bytes, double m,
                            double g, unsigned clusters,
                            unsigned cpus_per_cluster) const;

    /** Equilibrium global-bus utilization. */
    double globalUtilization(std::uint32_t page_bytes, double m,
                             double g, unsigned clusters,
                             unsigned cpus_per_cluster) const;

  private:
    struct Equilibrium
    {
        double perRefUs = 0.0;
        double rhoLocal = 0.0;
        double rhoGlobal = 0.0;
    };
    Equilibrium solve(std::uint32_t page_bytes, double m, double g,
                      unsigned clusters,
                      unsigned cpus_per_cluster) const;

    MissCostModel costs_;
    cpu::M68020Timing timing_;
    IbcCostModel ibc_;
};

} // namespace vmp::analytic

#endif // VMP_ANALYTIC_MODELS_HH
