/**
 * @file
 * Closed-form performance models from Section 5 of the paper:
 *
 *  - MissCostModel: elapsed and bus time per cache miss (Table 1) and
 *    the 75%-clean-victim averages (Table 2);
 *  - PerfModel: processor performance as a function of miss ratio
 *    (Figure 3), normalized to 1 at zero misses;
 *  - BusModel: per-processor bus utilization as a function of miss
 *    ratio (Figure 5);
 *  - QueuingModel: the single-server (bus) multiple-client (CPUs)
 *    queueing estimate behind the "up to 5 processors" claim
 *    (Section 5.3);
 *  - MvaModel: exact Mean Value Analysis of the closed machine-
 *    repairman network (n CPUs cycling between think time and one
 *    shared bus), which stays accurate where the open M/M/1 estimate
 *    saturates, with per-arbitration-discipline wait curves;
 *  - HierQueuingModel: the two-level (local + global bus) extension of
 *    both the open estimate and the MVA model.
 */

#ifndef VMP_ANALYTIC_MODELS_HH
#define VMP_ANALYTIC_MODELS_HH

#include <cstdint>
#include <vector>

#include "cpu/timing.hh"
#include "mem/vme_bus.hh"
#include "proto/timing.hh"
#include "sim/types.hh"

namespace vmp::analytic
{

/**
 * Where a model prediction stands relative to its own assumptions.
 * The open M/M/1 estimate sets saturated once the *offered* load
 * (zero-wait arrival rate times service time) reaches the bus
 * capacity: beyond that point the open-arrival assumption is broken
 * and the clamped fixed point, while finite, systematically
 * underpredicts a closed system. The MVA model has no such limit and
 * only reports convergence of its (hierarchical) fixed point.
 */
struct ModelDomain
{
    /** Model assumptions violated at this operating point. */
    bool saturated = false;
    /** Fixed-point iteration reached its tolerance. */
    bool converged = true;
    /** Equilibrium bus utilization (the binding bus, if two). */
    double rho = 0.0;

    bool inDomain() const { return !saturated && converged; }
};

/**
 * Measured bus-load shape of a workload, the inputs the queueing
 * models need beyond the raw miss ratio. The paper's closed-form
 * curves assume every miss moves a page and 75% of victims are clean;
 * real runs also take AssertOwnership (upgrade) misses that occupy
 * the bus for one short transaction instead of a block transfer, and
 * their victim mix differs. Feed the measured shape in to keep the
 * model honest; default-constructed values reproduce the paper's
 * assumptions.
 */
struct BusLoadProfile
{
    /** Cache misses per CPU memory reference. */
    double missRatio = 0.0;
    /**
     * Fraction of misses that are ownership upgrades (hit-but-not-
     * owned): one AssertOwnership short transaction, no block
     * transfer, no trap-handler fill path.
     */
    double upgradeFraction = 0.0;
    /** Victim write-backs per miss (= (1 - clean_fraction) when every
     *  miss replaces a page). */
    double writeBackRatio = 0.25;

    void check() const;
};

/** Per-miss elapsed and bus time, in microseconds. */
struct MissCost
{
    double elapsedUs = 0.0;
    double busUs = 0.0;
};

/**
 * Table 1/2 calculator: combines the software instruction budget with
 * the block-transfer timing.
 */
class MissCostModel
{
  public:
    MissCostModel(const proto::SoftwareTiming &software = {},
                  const mem::BusTiming &bus = {});

    /** Table 1 entry for one page size and victim state. */
    MissCost perMiss(std::uint32_t page_bytes, bool victim_dirty) const;

    /**
     * Table 2 entry: average cost with @p clean_fraction of replaced
     * pages unmodified (the paper assumes 0.75).
     */
    MissCost average(std::uint32_t page_bytes,
                     double clean_fraction = 0.75) const;

    const proto::SoftwareTiming &software() const { return software_; }
    const mem::BusTiming &bus() const { return bus_; }

  private:
    proto::SoftwareTiming software_;
    mem::BusTiming bus_;
};

/**
 * Figure 3: processor performance vs miss ratio.
 *
 *   perf(m) = 1 / (1 + m * refsPerInstr * instrRate * missCost)
 *
 * with missCost the Table 2 average elapsed time. At the paper's
 * example point (256-byte pages, m = 0.24%) this gives ~87%.
 */
class PerfModel
{
  public:
    PerfModel(const MissCostModel &costs = MissCostModel{},
              const cpu::M68020Timing &timing = {});

    /** Normalized performance at miss ratio @p m for @p page_bytes. */
    double performance(std::uint32_t page_bytes, double m,
                       double clean_fraction = 0.75) const;

    /** Miss ratio that degrades performance to @p target. */
    double missRatioFor(std::uint32_t page_bytes, double target,
                        double clean_fraction = 0.75) const;

  private:
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/**
 * Figure 5: single-processor bus utilization vs miss ratio.
 *
 *   util(m) = m * busTime / (1/(instrRate*refsPerInstr)
 *                            + m * elapsedTime)
 */
class BusModel
{
  public:
    BusModel(const MissCostModel &costs = MissCostModel{},
             const cpu::M68020Timing &timing = {});

    double utilization(std::uint32_t page_bytes, double m,
                       double clean_fraction = 0.75) const;

  private:
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/**
 * Section 5.3: M/M/1-style shared-bus congestion estimate. Each of n
 * processors offers bus work at rate lambda (misses/sec) with mean
 * service time s (bus time per miss); waiting inflates the effective
 * miss cost and thus degrades per-processor performance.
 */
class QueuingModel
{
  public:
    QueuingModel(const MissCostModel &costs = MissCostModel{},
                 const cpu::M68020Timing &timing = {});

    /** Aggregate offered bus utilization of n processors. */
    double offeredLoad(std::uint32_t page_bytes, double m,
                       unsigned n) const;

    /**
     * Expected per-processor performance with n processors sharing
     * the bus (M/M/1 waiting time added to each miss).
     */
    double perProcessorPerformance(std::uint32_t page_bytes, double m,
                                   unsigned n) const;

    /** Aggregate throughput in units of single-processor full speed. */
    double systemThroughput(std::uint32_t page_bytes, double m,
                            unsigned n) const;

    /**
     * Largest n whose per-processor performance stays above
     * @p degradation_limit of the 1-processor value. The paper's
     * parameters give about 5.
     */
    unsigned maxProcessors(std::uint32_t page_bytes, double m,
                           double degradation_limit = 0.9,
                           unsigned hard_cap = 64) const;

    /** perProcessorPerformance plus the domain flags. */
    struct Prediction
    {
        double perProcessorPerformance = 1.0;
        double systemThroughput = 0.0;
        /** Equilibrium mean queueing wait per bus visit (us). */
        double waitUs = 0.0;
        ModelDomain domain;
    };

    /**
     * The same clamped fixed point as perProcessorPerformance — the
     * numbers are identical — but with the in-domain/saturated status
     * surfaced instead of silently returning a clamped answer.
     */
    Prediction predict(std::uint32_t page_bytes, double m,
                       unsigned n) const;

  private:
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/**
 * Closed-network Mean Value Analysis of the shared bus: n customers
 * (CPUs) alternate between a think period Z (execution plus the
 * non-bus part of miss handling) and a visit to the single bus server
 * with mean demand s per miss. The exact MVA recursion
 *
 *   Q = 0; for i = 1..n { R = s * (1 + Q); X = i / (Z + R); Q = X R; }
 *
 * yields the response time R and throughput X; per-processor
 * performance is ref_us / (m * (Z + R)). Unlike the open M/M/1
 * estimate, the closed model remains exact (for exponential service)
 * at any load: a saturated bus simply throttles the miss rate, which
 * is what the simulated system does too.
 *
 * Arbitration disciplines: FIFO, round-robin and non-preemptive
 * priority all leave the *mean* wait unchanged for symmetric
 * customers (work conservation); the discipline redistributes waiting
 * between masters. For Priority the model splits the conserved
 * aggregate wait across bus-request levels with head-of-line M/G/1
 * ratios, so per-level performance curves come out; FIFO and
 * round-robin report the uniform mean.
 */
class MvaModel
{
  public:
    explicit MvaModel(
        mem::Arbitration discipline = mem::Arbitration::Fifo,
        unsigned priority_levels = 4,
        const MissCostModel &costs = MissCostModel{},
        const cpu::M68020Timing &timing = {});

    struct Prediction
    {
        double perProcessorPerformance = 1.0;
        double systemThroughput = 0.0;
        double busUtilization = 0.0;
        /** Mean queueing wait per bus visit (us). */
        double waitUs = 0.0;
        /**
         * Per-bus-request-level predictions (Priority discipline
         * only; index = level, higher level = higher priority).
         * Levels with no master assigned hold zero customers.
         */
        std::vector<double> levelWaitUs;
        std::vector<double> levelPerformance;
        ModelDomain domain;
    };

    Prediction predict(std::uint32_t page_bytes,
                       const BusLoadProfile &load, unsigned n) const;

    double perProcessorPerformance(std::uint32_t page_bytes,
                                   const BusLoadProfile &load,
                                   unsigned n) const;
    double systemThroughput(std::uint32_t page_bytes,
                            const BusLoadProfile &load,
                            unsigned n) const;
    double busUtilization(std::uint32_t page_bytes,
                          const BusLoadProfile &load, unsigned n) const;

    /** Mean bus occupancy per miss under @p load (us). */
    double serviceDemandUs(std::uint32_t page_bytes,
                           const BusLoadProfile &load) const;
    /** Mean zero-contention elapsed time per miss under @p load (us). */
    double missElapsedUs(std::uint32_t page_bytes,
                         const BusLoadProfile &load) const;

    mem::Arbitration discipline() const { return discipline_; }

  private:
    mem::Arbitration discipline_;
    unsigned priorityLevels_;
    MissCostModel costs_;
    cpu::M68020Timing timing_;
};

/** Instruction-time budget of the inter-bus board software, in
 *  microseconds (mirrors hier::IbcTiming's defaults). */
struct IbcCostModel
{
    /** Dispatch + bookkeeping per serviced request word. */
    double serviceUs = 3.0;
    /** Image install + table update after a global fetch. */
    double installUs = 2.0;
    /** Mean back-off before retrying an aborted global transfer. */
    double retryMeanUs = 7.0;
};

/**
 * Two-level extension of the Section 5.3 queueing estimate for the
 * cluster hierarchy (HierVmpSystem): k clusters of n processors each.
 * Every local cache miss queues on the *local* bus (M/M/1 with n
 * clients); a fraction g of those misses also miss cluster-wide and
 * additionally queue on the *global* bus (M/M/1 with k*n clients
 * offering the g-thinned rate) plus the inter-bus board's software
 * budget. The two waiting times are coupled through the per-reference
 * time, so the model iterates both to a joint fixed point.
 *
 * The model is load-based, like its flat parent: it captures fetch
 * traffic but not data contention (ownership ping-pong), so it tracks
 * simulation best for partitioned or mostly-read-shared workloads —
 * the paper's own "providing data contention is not excessive" caveat.
 */
class HierQueuingModel
{
  public:
    HierQueuingModel(const MissCostModel &costs = MissCostModel{},
                     const cpu::M68020Timing &timing = {},
                     const IbcCostModel &ibc = {});

    /**
     * Expected per-processor performance, normalized to 1 at zero
     * misses. @p m is the per-CPU cache miss ratio and @p g the
     * fraction of those misses that miss cluster-wide (global fetches
     * per local miss).
     */
    double perProcessorPerformance(std::uint32_t page_bytes, double m,
                                   double g, unsigned clusters,
                                   unsigned cpus_per_cluster) const;

    /** Aggregate throughput in units of single-processor full speed. */
    double systemThroughput(std::uint32_t page_bytes, double m,
                            double g, unsigned clusters,
                            unsigned cpus_per_cluster) const;

    /** Aggregate simulated references per second. */
    double refsPerSecond(std::uint32_t page_bytes, double m, double g,
                         unsigned clusters,
                         unsigned cpus_per_cluster) const;

    /** Equilibrium local-bus utilization (one cluster). */
    double localUtilization(std::uint32_t page_bytes, double m,
                            double g, unsigned clusters,
                            unsigned cpus_per_cluster) const;

    /** Equilibrium global-bus utilization. */
    double globalUtilization(std::uint32_t page_bytes, double m,
                             double g, unsigned clusters,
                             unsigned cpus_per_cluster) const;

    /** Open-model prediction plus per-bus domain flags. */
    struct Prediction
    {
        double perProcessorPerformance = 1.0;
        double systemThroughput = 0.0;
        double rhoLocal = 0.0;
        double rhoGlobal = 0.0;
        bool saturatedLocal = false;
        bool saturatedGlobal = false;
        ModelDomain domain;
    };

    /**
     * Same numbers as perProcessorPerformance, with each bus's
     * offered-load saturation status surfaced.
     */
    Prediction predict(std::uint32_t page_bytes, double m, double g,
                       unsigned clusters,
                       unsigned cpus_per_cluster) const;

    /** Two-level closed (MVA) prediction. */
    struct MvaPrediction
    {
        double perProcessorPerformance = 1.0;
        double systemThroughput = 0.0;
        double refsPerSecond = 0.0;
        /** Mean queueing wait per local / global bus visit (us). */
        double localWaitUs = 0.0;
        double globalWaitUs = 0.0;
        /** Mean queueing wait at the cluster's inter-bus board (us). */
        double ibcWaitUs = 0.0;
        double rhoLocal = 0.0;
        double rhoGlobal = 0.0;
        /** Utilization of the (single-server) inter-bus board. */
        double rhoIbc = 0.0;
        /**
         * Predicted miss-handler retry loops per global miss. The
         * aborted first attempt plus every re-trap until the board has
         * installed the frame; 1.0 is the single-retry regime.
         */
        double loopsPerGlobalMiss = 0.0;
        /**
         * The global path left the single-retry regime: either more
         * than two loops are predicted, or the queueing waits at the
         * board and global bus rival the path's deterministic service
         * time. Past that point the true loop count is governed by
         * wait *variance* (bursty sibling misses piling onto the
         * single-server board), which a mean-value analysis
         * underestimates — the prediction is flagged out-of-domain.
         */
        bool retryCascade = false;
        ModelDomain domain;
    };

    /**
     * Closed-network model of one cluster level coupled to the global
     * level, iterated to a joint fixed point over three centers:
     *
     *  - the local bus (n CPU customers; demand includes the aborted
     *    retry attempts of global misses),
     *  - the cluster's inter-bus board, a single server that stays
     *    busy for the whole global round trip of a fetch (dispatch,
     *    global bus wait + transfer, install) plus the echo and
     *    spurious interrupt words the retry traffic feeds it,
     *  - the global bus (k board customers — each board serializes
     *    its global requests, so at most k are ever outstanding).
     *
     * A CPU waits out the board's work in miss-handler *retry loops*
     * (re-trap, re-translate, aborted re-fill), so the per-global-miss
     * delay is quantized in loop periods; the model estimates the
     * expected loop count from the board's readiness time and flags a
     * retry cascade (loops > 2) as out-of-domain. All three centers
     * use mean waits, which the arbitration disciplines share for
     * symmetric customers (work conservation), so the coupling is
     * discipline-independent; the per-level Priority split of the
     * flat MvaModel applies within one bus.
     */
    MvaPrediction predictMva(std::uint32_t page_bytes,
                             const BusLoadProfile &load, double g,
                             unsigned clusters,
                             unsigned cpus_per_cluster) const;

  private:
    struct Equilibrium
    {
        double perRefUs = 0.0;
        double rhoLocal = 0.0;
        double rhoGlobal = 0.0;
        bool converged = false;
    };
    Equilibrium solve(std::uint32_t page_bytes, double m, double g,
                      unsigned clusters,
                      unsigned cpus_per_cluster) const;

    MissCostModel costs_;
    cpu::M68020Timing timing_;
    IbcCostModel ibc_;
};

} // namespace vmp::analytic

#endif // VMP_ANALYTIC_MODELS_HH
