#include "backing/frame_arena.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vmp::backing
{

FrameArena::FrameArena(std::uint32_t frames, std::uint32_t page_bytes)
    : capacity_(frames), pageBytes_(page_bytes), frames_(frames)
{
    if (frames == 0)
        panic("frame arena: zero frames");
    for (std::uint32_t i = 0; i < frames; ++i)
        freeList_.push_back(i);
}

std::optional<std::uint32_t>
FrameArena::lookup(Asid asid, std::uint64_t vpn) const
{
    const auto it = index_.find({asid, vpn});
    if (it == index_.end())
        return std::nullopt;
    return it->second;
}

std::uint32_t
FrameArena::insert(Asid asid, std::uint64_t vpn,
                   std::vector<std::uint8_t> data, bool dirty,
                   bool prefetched)
{
    if (freeList_.empty())
        panic("frame arena: insert with no free slot");
    if (data.size() != pageBytes_)
        panic("frame arena: image of ", data.size(),
              " bytes (expected ", pageBytes_, ")");
    if (index_.count({asid, vpn}) != 0)
        panic("frame arena: <", asid, ",", vpn, "> already resident");

    const std::uint32_t slot = freeList_.front();
    freeList_.pop_front();
    ArenaFrame &f = at(slot);
    f.asid = asid;
    f.vpn = vpn;
    f.valid = true;
    f.dirty = dirty;
    f.prefetched = prefetched;
    f.stamp = nextStamp_++;
    f.data = std::move(data);
    index_[{asid, vpn}] = slot;
    ++used_;
    peakUsed_ = std::max(peakUsed_, used_);
    if (dirty) {
        ++dirty_;
        ++f.dirtyEpoch;
        dirtyFifo_.push_back(slot);
    } else {
        cleanFifo_.push_back(slot);
    }
    return slot;
}

void
FrameArena::overwrite(std::uint32_t slot, std::vector<std::uint8_t> data)
{
    ArenaFrame &f = at(slot);
    if (!f.valid)
        panic("frame arena: overwrite of invalid slot ", slot);
    if (data.size() != pageBytes_)
        panic("frame arena: image of ", data.size(),
              " bytes (expected ", pageBytes_, ")");
    f.data = std::move(data);
    f.prefetched = false;
    ++f.dirtyEpoch;
    if (!f.dirty) {
        f.dirty = true;
        ++dirty_;
        eraseFrom(cleanFifo_, slot);
        dirtyFifo_.push_back(slot);
    } else {
        // Already dirty: if still queued, keep its queue position; if
        // mid-drain (not queued), re-queue so the new image drains too.
        if (std::find(dirtyFifo_.begin(), dirtyFifo_.end(), slot) ==
            dirtyFifo_.end())
            dirtyFifo_.push_back(slot);
    }
}

void
FrameArena::markClean(std::uint32_t slot)
{
    ArenaFrame &f = at(slot);
    if (!f.valid || !f.dirty)
        panic("frame arena: markClean of non-dirty slot ", slot);
    f.dirty = false;
    --dirty_;
    eraseFrom(dirtyFifo_, slot);
    cleanFifo_.push_back(slot);
}

void
FrameArena::markDemanded(std::uint32_t slot)
{
    ArenaFrame &f = at(slot);
    if (!f.valid)
        panic("frame arena: markDemanded of invalid slot ", slot);
    f.prefetched = false;
}

void
FrameArena::release(std::uint32_t slot)
{
    ArenaFrame &f = at(slot);
    if (!f.valid)
        panic("frame arena: release of invalid slot ", slot);
    index_.erase({f.asid, f.vpn});
    if (f.dirty) {
        --dirty_;
        eraseFrom(dirtyFifo_, slot);
    } else {
        eraseFrom(cleanFifo_, slot);
    }
    f.valid = false;
    f.dirty = false;
    f.prefetched = false;
    f.stamp = nextStamp_++;
    f.data.clear();
    --used_;
    freeList_.push_back(slot);
}

std::optional<std::uint32_t>
FrameArena::reclaimOldestClean()
{
    if (cleanFifo_.empty())
        return std::nullopt;
    const std::uint32_t slot = cleanFifo_.front();
    release(slot);
    return slot;
}

std::vector<std::uint32_t>
FrameArena::takeDirtyBatch(std::uint32_t max)
{
    std::vector<std::uint32_t> batch;
    while (batch.size() < max && !dirtyFifo_.empty()) {
        batch.push_back(dirtyFifo_.front());
        dirtyFifo_.pop_front();
    }
    return batch;
}

std::vector<std::uint32_t>
FrameArena::slotsOf(Asid asid) const
{
    std::vector<std::uint32_t> slots;
    for (std::uint32_t i = 0; i < capacity_; ++i) {
        if (frames_[i].valid && frames_[i].asid == asid)
            slots.push_back(i);
    }
    return slots;
}

const ArenaFrame &
FrameArena::frame(std::uint32_t slot) const
{
    if (slot >= capacity_)
        panic("frame arena: slot ", slot, " out of range");
    return frames_[slot];
}

ArenaFrame &
FrameArena::at(std::uint32_t slot)
{
    if (slot >= capacity_)
        panic("frame arena: slot ", slot, " out of range");
    return frames_[slot];
}

void
FrameArena::eraseFrom(std::deque<std::uint32_t> &fifo,
                      std::uint32_t slot)
{
    const auto it = std::find(fifo.begin(), fifo.end(), slot);
    if (it != fifo.end())
        fifo.erase(it);
}

} // namespace vmp::backing
