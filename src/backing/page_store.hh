/**
 * @file
 * Durable page-image plane of the memory tier: page-sized blobs keyed
 * by <asid, vpn>. This is the storage the tier's backends drain into
 * and recovery restores from; the *timing* of getting a page here
 * (arena, batching, backend latency) lives in backing::MemoryTier.
 *
 * fetch() hands out a pointer to the stored image rather than a copy:
 * a 4 KiB blob per page-in is real memcpy traffic on the host, and the
 * callers (page-in DMA, recovery restore) only ever read the image
 * once before it goes stale. The stores()/fetches() counters count
 * exactly one per successful operation — regression-tested, since the
 * tier's eviction batching must not double-count them.
 */

#ifndef VMP_BACKING_PAGE_STORE_HH
#define VMP_BACKING_PAGE_STORE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::backing
{

/** Image granule when none is configured (the 4 KiB vm page). */
inline constexpr std::uint32_t kDefaultPageBytes = 4096;

/** Keyed page-image store. */
class PageStore
{
  public:
    explicit PageStore(Tick latency_ns = usec(500),
                       std::uint32_t page_bytes = kDefaultPageBytes)
        : latency_(latency_ns), pageBytes_(page_bytes)
    {}

    /** Simulated access latency for one page transfer (flat model;
     *  the tier's backend models refine this). */
    Tick latency() const { return latency_; }

    /** Size every stored image must have. */
    std::uint32_t pageBytes() const { return pageBytes_; }

    /** Save a page image (page-out / checkpoint). */
    void store(Asid asid, std::uint64_t vpn,
               std::vector<std::uint8_t> data);

    /**
     * Borrow a page image, if this page was ever stored. The pointer
     * stays valid until the next store()/take()/dropSpace() for the
     * same page. Counts one fetch when the page is present.
     */
    const std::vector<std::uint8_t> *fetch(Asid asid,
                                           std::uint64_t vpn);

    /** Move a page image out (and erase it). Counts one fetch. */
    std::optional<std::vector<std::uint8_t>> take(Asid asid,
                                                  std::uint64_t vpn);

    /** True if an image exists; counts nothing (policy probes). */
    bool contains(Asid asid, std::uint64_t vpn) const;

    /** Drop all pages of an address space. */
    void dropSpace(Asid asid);

    std::size_t pagesHeld() const { return pages_.size(); }
    const Counter &stores() const { return stores_; }
    const Counter &fetches() const { return fetches_; }

  private:
    Tick latency_;
    std::uint32_t pageBytes_;
    std::map<std::pair<Asid, std::uint64_t>,
             std::vector<std::uint8_t>> pages_;
    Counter stores_;
    Counter fetches_;
};

} // namespace vmp::backing

#endif // VMP_BACKING_PAGE_STORE_HH
