/**
 * @file
 * The modeled memory-tier node (ROADMAP direction 2): what used to be
 * a passive map with a flat latency stamp becomes a discrete-event
 * node with a bounded FrameArena of local frames, an asynchronous
 * reclaim engine that drains dirty frames to a per-space backend in
 * pipelined batches, and a sequential-stream prefetcher.
 *
 * Two modes:
 *
 *  - Mirror: byte-for-byte the old passive BackingStore timing — one
 *    flat-latency event per fetch/store, named "page-in"/"page-out",
 *    with the image plane accessed inside the event. A simulation
 *    configured this way is bit-identical to the pre-tier code
 *    (regression-gated by bench_memtier).
 *
 *  - Async: page-outs complete as soon as the node accepts the page
 *    into its arena (a DMA-speed transfer, not a backend-speed one);
 *    dedicated reclaim engines later drain dirty frames to the
 *    backend in batches, pipelining the per-page fixed cost. The miss
 *    path only stalls on eviction when the arena is truly exhausted
 *    (every frame dirty and in flight). Page-ins hit the arena when a
 *    prefetched or still-resident image is present.
 *
 * The tier owns the durable PageStore image plane; recovery restores
 * from it. An optional DmaDevice routes page transfers over a modeled
 * bus so tier traffic contends with miss traffic.
 */

#ifndef VMP_BACKING_MEMORY_TIER_HH
#define VMP_BACKING_MEMORY_TIER_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "backing/backend.hh"
#include "backing/frame_arena.hh"
#include "backing/page_store.hh"
#include "mem/dma.hh"
#include "obs/event_tracer.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace vmp::backing
{

/** Tier behavior selector. */
enum class TierMode : std::uint8_t
{
    /** Reproduce the legacy passive store exactly (flat latency). */
    Mirror = 0,
    /** Arena + async reclaim pipeline + prefetch. */
    Async,
};

/** Memory-tier configuration knobs. */
struct TierConfig
{
    TierMode mode = TierMode::Mirror;
    /** Flat per-page latency of the Disk backend (and the entire
     *  Mirror mode) — mirrors vm::VmConfig::diskLatencyNs. */
    Tick diskLatencyNs = usec(500);
    /** Page-image granule. */
    std::uint32_t pageBytes = kDefaultPageBytes;
    /** Node-local frames in the arena (Async mode). */
    std::uint32_t arenaFrames = 64;
    /** Dirty frames drained per reclaim batch. */
    std::uint32_t reclaimBatch = 8;
    /** Start draining once this many frames are dirty
     *  (0 = arenaFrames / 2). */
    std::uint32_t dirtyHighWater = 0;
    /** Node-side cost of accepting one page-out into the arena when
     *  no DMA device is attached (DMA models the transfer itself). */
    Tick arenaAcceptNs = usec(2);
    /** Node-side cost of serving a page-in from the arena. */
    Tick arenaHitNs = usec(2);
    /** Minimum spacing of pipelined pages within a drain batch. */
    Tick pipelineIntervalNs = usec(20);
    /** Backend of address spaces with no explicit setBackend(). */
    BackendKind defaultBackend = BackendKind::Disk;
    /** Pages prefetched ahead of a detected stream (0 = off). */
    std::uint32_t prefetchDepth = 0;
    /** Consecutive-vpn demand fetches before the stream is trusted. */
    std::uint32_t prefetchMinStreak = 2;
};

/** The memory-tier node. */
class MemoryTier
{
  public:
    using Done = std::function<void()>;
    /**
     * Page-in completion. The image pointer is valid only for the
     * duration of the callback (nullptr = never-stored page, i.e.
     * zero-fill).
     */
    using FetchDone =
        std::function<void(const std::vector<std::uint8_t> *)>;

    MemoryTier(EventQueue &events, const TierConfig &config = {});

    const TierConfig &config() const { return cfg_; }

    /** Durable image plane (recovery restores from this). */
    PageStore &images() { return images_; }
    const PageStore &images() const { return images_; }

    /** Node-local frame pool; null in Mirror mode. */
    FrameArena *arena() { return arena_.get(); }
    const FrameArena *arena() const { return arena_.get(); }

    /** Select the backend medium for one address space. */
    void setBackend(Asid asid, BackendKind kind);
    BackendKind backendOf(Asid asid) const;

    /**
     * Route page transfers through a DMA engine on @p bus so they
     * contend with miss traffic (Async mode only; the legacy path —
     * and Mirror mode — bypasses the bus model).
     */
    void attachDma(mem::VmeBus &bus, std::uint32_t master_id);

    /** Attach the observability tracer (null = off, zero-cost). */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        track_ = track;
    }

    /**
     * Request the image of <asid, vpn> for a page-in targeting host
     * frame @p host_paddr. Completion latency depends on mode, arena
     * residency and backend.
     */
    void fetchPage(Asid asid, std::uint64_t vpn, Addr host_paddr,
                   FetchDone done);

    /**
     * Hand a page image to the tier for a page-out of host frame
     * @p host_paddr. In Async mode @p done fires once the node has
     * *accepted* the page (arena slot taken); the backend write-back
     * happens later, off the miss path — unless the arena is
     * exhausted, in which case the request stalls until a drain frees
     * capacity (counted in storeStalls/storeStallNs).
     */
    void storePage(Asid asid, std::uint64_t vpn, Addr host_paddr,
                   std::vector<std::uint8_t> data, Done done);

    /** Drop all trace of an address space (images, arena frames,
     *  queued stores, prefetch streams). In-flight drains for the
     *  space are cancelled by generation. */
    void dropSpace(Asid asid);

    /** Cancel outstanding prefetches and forget the stream state of
     *  @p asid (context-switch hook). */
    void cancelPrefetch(Asid asid);

    /** Kick the reclaim engine regardless of the high-water mark
     *  (pre-drain before a planned burst; also used by tests). */
    void drainNow();

    /** True while a drain batch is in flight. */
    bool draining() const { return draining_; }
    /** Page-outs parked waiting for arena capacity. */
    std::size_t pendingStores() const { return pending_.size(); }

    // --- statistics ---
    const Counter &arenaHits() const { return arenaHits_; }
    const Counter &backendFetches() const { return backendFetches_; }
    const Counter &zeroFills() const { return zeroFills_; }
    const Counter &storesAccepted() const { return storesAccepted_; }
    const Counter &storeStalls() const { return storeStalls_; }
    const Counter &drainBatches() const { return drainBatches_; }
    const Counter &pagesDrained() const { return pagesDrained_; }
    const Counter &cleanEvictions() const { return cleanEvictions_; }
    const Counter &prefetchesIssued() const { return prefetchIssued_; }
    const Counter &prefetchHits() const { return prefetchHits_; }
    const Counter &prefetchesCancelled() const
    {
        return prefetchCancelled_;
    }
    /** Total ns page-out requests spent parked on a full arena. */
    double storeStallNs() const { return storeStallNs_.value(); }
    void registerStats(StatGroup &group) const;

  private:
    struct PendingStore
    {
        Asid asid;
        std::uint64_t vpn;
        std::vector<std::uint8_t> data;
        Done done;
        Tick enqueuedAt;
    };

    /** One page of an in-flight drain batch. */
    struct DrainItem
    {
        std::uint32_t slot;
        std::uint64_t stamp;
        std::uint64_t dirtyEpoch;
        Asid asid;
        std::uint64_t vpn;
        std::uint64_t spaceGen;
        std::vector<std::uint8_t> data;
    };

    const BackendModel &modelOf(Asid asid) const;
    std::uint32_t dirtyHighWater() const;
    std::uint64_t spaceGen(Asid asid) const;

    void fetchMirror(Asid asid, std::uint64_t vpn, FetchDone done);
    void storeMirror(Asid asid, std::uint64_t vpn,
                     std::vector<std::uint8_t> data, Done done);
    /** Serve a ready image to the requester (optional DMA leg). */
    void deliverFetch(Asid asid, std::uint64_t vpn, Addr host_paddr,
                      Tick latency,
                      std::shared_ptr<std::vector<std::uint8_t>> image,
                      Tick span_start, FetchDone done);
    /** Install an accepted page-out into the arena. */
    void acceptStore(Asid asid, std::uint64_t vpn,
                     std::vector<std::uint8_t> data);
    void kickReclaim();
    void startBatch();
    void completeDrain(const DrainItem &item, Tick issued_at,
                       Tick cost, bool last);
    void servicePending();
    void updateStream(Asid asid, std::uint64_t vpn);
    void issuePrefetches(Asid asid, std::uint64_t vpn);
    void trace(obs::EventKind kind, Tick at, Tick dur, Asid asid,
               std::uint64_t vpn, std::uint8_t aux = 0);

    EventQueue &events_;
    TierConfig cfg_;
    PageStore images_;
    std::unique_ptr<FrameArena> arena_;
    std::unique_ptr<mem::DmaDevice> dma_;
    std::map<Asid, BackendKind> backendOf_;
    BackendModel models_[kBackendKinds];

    bool draining_ = false;
    std::deque<PendingStore> pending_;
    /** Bumped by dropSpace: in-flight drains for older generations
     *  must not resurrect dropped images. */
    std::map<Asid, std::uint64_t> spaceGen_;

    struct Stream
    {
        std::uint64_t lastVpn = 0;
        std::uint32_t streak = 0;
        /** Bumped by cancelPrefetch: stale in-flight prefetches drop. */
        std::uint64_t gen = 0;
    };
    std::map<Asid, Stream> streams_;

    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t track_ = 0;

    Counter arenaHits_;
    Counter backendFetches_;
    Counter zeroFills_;
    Counter storesAccepted_;
    Counter storeStalls_;
    Counter drainBatches_;
    Counter pagesDrained_;
    Counter cleanEvictions_;
    Counter prefetchIssued_;
    Counter prefetchHits_;
    Counter prefetchCancelled_;
    Scalar storeStallNs_;
    Scalar arenaPeak_;
    Histogram batchSizes_{9, 1};
    Histogram drainQueueDepth_{16, 4};
};

} // namespace vmp::backing

#endif // VMP_BACKING_MEMORY_TIER_HH
