#include "backing/budget.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace vmp::backing
{

BudgetController::BudgetController(EventQueue &events,
                                   const BudgetConfig &config)
    : events_(events), cfg_(config)
{
    if (cfg_.totalFrames == 0)
        panic("budget controller: zero total frames");
    if (cfg_.epochNs == 0)
        panic("budget controller: zero epoch");
}

std::uint32_t
BudgetController::addClient(const std::string &name)
{
    for (const auto &client : clients_) {
        if (client.name == name)
            panic("budget controller: duplicate client \"", name,
                  "\"");
    }
    Client client;
    client.name = name;
    clients_.push_back(std::move(client));
    splitEvenly();
    return static_cast<std::uint32_t>(clients_.size() - 1);
}

const std::string &
BudgetController::clientName(std::uint32_t client) const
{
    return clients_.at(client).name;
}

void
BudgetController::splitEvenly()
{
    const auto n = static_cast<std::uint32_t>(clients_.size());
    const std::uint32_t share = cfg_.totalFrames / n;
    const std::uint32_t rem = cfg_.totalFrames % n;
    for (std::uint32_t i = 0; i < n; ++i)
        clients_[i].grant = share + (i < rem ? 1 : 0);
}

void
BudgetController::noteFault(std::uint32_t client)
{
    ++clients_.at(client).epochFaults;
}

void
BudgetController::noteUse(std::uint32_t client, std::int32_t delta)
{
    Client &c = clients_.at(client);
    if (delta < 0 &&
        c.used < static_cast<std::uint32_t>(-delta))
        panic("budget controller: occupancy of \"", c.name,
              "\" would go negative");
    c.used = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(c.used) + delta);
}

std::uint32_t
BudgetController::grantOf(std::uint32_t client) const
{
    return clients_.at(client).grant;
}

std::uint32_t
BudgetController::usedOf(std::uint32_t client) const
{
    return clients_.at(client).used;
}

bool
BudgetController::overGrant(std::uint32_t client) const
{
    const Client &c = clients_.at(client);
    return c.used > c.grant;
}

void
BudgetController::start()
{
    if (running_)
        return;
    running_ = true;
    scheduleEpoch();
}

void
BudgetController::scheduleEpoch()
{
    events_.scheduleIn(
        cfg_.epochNs,
        [this] {
            if (!running_)
                return;
            rebalance();
            scheduleEpoch();
        },
        "budget-epoch");
}

void
BudgetController::rebalance()
{
    ++epochs_;
    if (clients_.empty())
        return;
    const auto n = static_cast<std::uint32_t>(clients_.size());

    // The floor comes off the top; the rest is split by sqrt-pressure
    // shares with deterministic largest-remainder rounding.
    const std::uint32_t floor_total =
        std::min(cfg_.totalFrames, cfg_.minGrant * n);
    const std::uint32_t floor_each = floor_total / n;
    const std::uint32_t pool = cfg_.totalFrames - floor_each * n;

    double total_weight = 0.0;
    std::vector<double> weight(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        weight[i] = std::sqrt(
            static_cast<double>(clients_[i].epochFaults) + 1.0);
        total_weight += weight[i];
    }

    std::vector<std::uint32_t> grant(n);
    std::vector<double> fraction(n);
    std::uint32_t assigned = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const double exact =
            static_cast<double>(pool) * weight[i] / total_weight;
        grant[i] = static_cast<std::uint32_t>(exact);
        fraction[i] = exact - static_cast<double>(grant[i]);
        assigned += grant[i];
    }
    // Hand leftover frames to the largest fractional shares, ties
    // broken by client id — fully deterministic.
    std::vector<std::uint32_t> order(n);
    for (std::uint32_t i = 0; i < n; ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&fraction](std::uint32_t a, std::uint32_t b) {
                         return fraction[a] > fraction[b];
                     });
    for (std::uint32_t i = 0; assigned < pool; ++i)
        ++grant[order[i]], ++assigned;

    std::uint64_t changed = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t next = floor_each + grant[i];
        Client &c = clients_[i];
        if (next != c.grant) {
            c.grant = next;
            ++grantChanges_;
            ++changed;
        }
        grantSpread_.sample(static_cast<double>(c.grant));
        c.epochFaults = 0;
        if (c.used > c.grant) {
            ++shrinks_;
            if (shrink_)
                shrink_(i, c.grant);
        }
    }

    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.at = events_.now();
        event.arg0 = n;
        event.arg1 = changed;
        event.track = track_;
        event.kind = obs::EventKind::BudgetEpoch;
        tracer_->record(event);
    }
}

void
BudgetController::registerStats(StatGroup &group) const
{
    group.addCounter("epochs", "controller epochs run", epochs_);
    group.addCounter("grant_changes",
                     "per-client grant adjustments applied",
                     grantChanges_);
    group.addCounter("shrinks",
                     "epochs that left a client over its grant",
                     shrinks_);
    group.addHistogram("grants", "grant sizes sampled each epoch",
                       grantSpread_);
}

} // namespace vmp::backing
