#include "backing/memory_tier.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vmp::backing
{

MemoryTier::MemoryTier(EventQueue &events, const TierConfig &config)
    : events_(events), cfg_(config),
      images_(config.diskLatencyNs, config.pageBytes)
{
    for (std::size_t k = 0; k < kBackendKinds; ++k) {
        models_[k] = BackendModel::forKind(static_cast<BackendKind>(k),
                                           cfg_.diskLatencyNs);
    }
    if (cfg_.mode == TierMode::Async) {
        arena_ = std::make_unique<FrameArena>(cfg_.arenaFrames,
                                              cfg_.pageBytes);
    }
}

void
MemoryTier::setBackend(Asid asid, BackendKind kind)
{
    backendOf_[asid] = kind;
}

BackendKind
MemoryTier::backendOf(Asid asid) const
{
    const auto it = backendOf_.find(asid);
    return it == backendOf_.end() ? cfg_.defaultBackend : it->second;
}

const BackendModel &
MemoryTier::modelOf(Asid asid) const
{
    return models_[static_cast<std::size_t>(backendOf(asid))];
}

std::uint32_t
MemoryTier::dirtyHighWater() const
{
    if (cfg_.dirtyHighWater != 0)
        return cfg_.dirtyHighWater;
    return std::max<std::uint32_t>(1, cfg_.arenaFrames / 2);
}

std::uint64_t
MemoryTier::spaceGen(Asid asid) const
{
    const auto it = spaceGen_.find(asid);
    return it == spaceGen_.end() ? 0 : it->second;
}

void
MemoryTier::attachDma(mem::VmeBus &bus, std::uint32_t master_id)
{
    if (dma_)
        panic("memory tier: DMA attached twice");
    dma_ = std::make_unique<mem::DmaDevice>(master_id, bus);
}

// --------------------------------------------------------------------
// Mirror mode: the legacy passive store, verbatim
// --------------------------------------------------------------------

void
MemoryTier::fetchMirror(Asid asid, std::uint64_t vpn, FetchDone done)
{
    // One flat-latency event with the image plane read inside it —
    // the exact event sequence (and name) of the old VmSystem path,
    // so mirror-mode fingerprints match the pre-tier simulator.
    events_.scheduleIn(
        images_.latency(),
        [this, asid, vpn, done = std::move(done)] {
            done(images_.fetch(asid, vpn));
        },
        "page-in");
}

void
MemoryTier::storeMirror(Asid asid, std::uint64_t vpn,
                        std::vector<std::uint8_t> data, Done done)
{
    events_.scheduleIn(
        images_.latency(),
        [this, asid, vpn, data = std::move(data),
         done = std::move(done)]() mutable {
            images_.store(asid, vpn, std::move(data));
            done();
        },
        "page-out");
}

// --------------------------------------------------------------------
// Page-in path
// --------------------------------------------------------------------

void
MemoryTier::fetchPage(Asid asid, std::uint64_t vpn, Addr host_paddr,
                      FetchDone done)
{
    if (cfg_.mode == TierMode::Mirror) {
        fetchMirror(asid, vpn, std::move(done));
        return;
    }

    const Tick start = events_.now();
    const auto slot = arena_->lookup(asid, vpn);
    if (slot) {
        const ArenaFrame &frame = arena_->frame(*slot);
        ++arenaHits_;
        if (frame.prefetched) {
            ++prefetchHits_;
            arena_->markDemanded(*slot);
        }
        // Copy now: the slot can be reclaimed before the event fires.
        auto image = std::make_shared<std::vector<std::uint8_t>>(
            frame.data);
        updateStream(asid, vpn);
        deliverFetch(asid, vpn, host_paddr, cfg_.arenaHitNs,
                     std::move(image), start, std::move(done));
        return;
    }

    const BackendModel &model = modelOf(asid);
    const Tick latency = model.transferNs(cfg_.pageBytes);
    const auto *stored = images_.fetch(asid, vpn);
    if (stored == nullptr) {
        // Never-stored page: the request still travels to the backend
        // before the node reports "no image" (zero-fill), matching
        // the flat store's charge for comparability across modes.
        ++zeroFills_;
        deliverFetch(asid, vpn, host_paddr, latency, nullptr, start,
                     std::move(done));
        return;
    }
    ++backendFetches_;
    auto image =
        std::make_shared<std::vector<std::uint8_t>>(*stored);
    updateStream(asid, vpn);
    issuePrefetches(asid, vpn);
    deliverFetch(asid, vpn, host_paddr, latency, std::move(image),
                 start, std::move(done));
}

void
MemoryTier::deliverFetch(
    Asid asid, std::uint64_t vpn, Addr host_paddr, Tick latency,
    std::shared_ptr<std::vector<std::uint8_t>> image, Tick span_start,
    FetchDone done)
{
    const auto finish = [this, asid, vpn, span_start,
                         image, done = std::move(done)] {
        trace(obs::EventKind::TierFetch, span_start,
              events_.now() - span_start, asid, vpn,
              image ? 0 : 1);
        done(image ? image.get() : nullptr);
    };
    if (dma_ && image) {
        // Stream the page to the host frame over the modeled bus
        // (contending with miss traffic) after the backend/arena
        // latency has elapsed.
        events_.scheduleIn(
            latency,
            [this, host_paddr, image, finish] {
                dma_->write(host_paddr, *image, finish);
            },
            "tier-fetch");
        return;
    }
    events_.scheduleIn(latency, finish, "tier-fetch");
}

// --------------------------------------------------------------------
// Page-out path
// --------------------------------------------------------------------

void
MemoryTier::storePage(Asid asid, std::uint64_t vpn, Addr host_paddr,
                      std::vector<std::uint8_t> data, Done done)
{
    if (data.size() != cfg_.pageBytes)
        panic("memory tier: page-out of ", data.size(),
              " bytes (expected ", cfg_.pageBytes, ")");
    if (cfg_.mode == TierMode::Mirror) {
        storeMirror(asid, vpn, std::move(data), std::move(done));
        return;
    }

    const Tick start = events_.now();
    const auto accept = [this, asid, vpn, start,
                         done = std::move(done)](
                            std::vector<std::uint8_t> image) {
        if (arena_->lookup(asid, vpn) || arena_->hasFree() ||
            arena_->cleanCount() > 0) {
            acceptStore(asid, vpn, std::move(image));
            trace(obs::EventKind::TierStore, start,
                  events_.now() - start, asid, vpn);
            done();
            return;
        }
        // Arena exhausted (every frame dirty, drains in flight): the
        // page-out — and with it the miss path — genuinely stalls.
        ++storeStalls_;
        pending_.push_back(PendingStore{asid, vpn, std::move(image),
                                        std::move(done),
                                        events_.now()});
        kickReclaim();
    };

    if (dma_) {
        // Model the host-frame -> node transfer on the bus; the image
        // content was snapshotted by the caller under the flush
        // bracket (the frame may be reallocated before the DMA
        // completes), so the returned bytes are only timing.
        dma_->read(host_paddr, cfg_.pageBytes,
                   [accept, data = std::move(data)](
                       std::vector<std::uint8_t>) mutable {
                       accept(std::move(data));
                   });
        return;
    }
    events_.scheduleIn(cfg_.arenaAcceptNs,
                       [accept, data = std::move(data)]() mutable {
                           accept(std::move(data));
                       },
                       "tier-store");
}

void
MemoryTier::acceptStore(Asid asid, std::uint64_t vpn,
                        std::vector<std::uint8_t> data)
{
    ++storesAccepted_;
    const auto slot = arena_->lookup(asid, vpn);
    if (slot) {
        // Double page-out of the same <asid, vpn> (e.g. paged in and
        // evicted again before the first drain ran): overwrite in
        // place, bumping the dirty epoch so an in-flight drain of the
        // old image cannot mark the new one clean.
        arena_->overwrite(*slot, std::move(data));
    } else {
        if (!arena_->hasFree()) {
            const auto victim = arena_->reclaimOldestClean();
            if (!victim)
                panic("memory tier: acceptStore with no capacity");
            ++cleanEvictions_;
        }
        arena_->insert(asid, vpn, std::move(data), true);
    }
    arenaPeak_.set(arena_->peakUsed());
    if (arena_->dirtyCount() >= dirtyHighWater())
        kickReclaim();
}

// --------------------------------------------------------------------
// Reclaim engine
// --------------------------------------------------------------------

void
MemoryTier::drainNow()
{
    if (cfg_.mode == TierMode::Mirror)
        return;
    kickReclaim();
}

void
MemoryTier::kickReclaim()
{
    if (draining_)
        return;
    draining_ = true;
    startBatch();
}

void
MemoryTier::startBatch()
{
    drainQueueDepth_.sample(
        static_cast<double>(arena_->drainQueueDepth()));
    const auto batch = arena_->takeDirtyBatch(cfg_.reclaimBatch);
    if (batch.empty()) {
        draining_ = false;
        return;
    }
    ++drainBatches_;
    batchSizes_.sample(static_cast<double>(batch.size()));

    // Pipelined issue: the first page pays the backend's full request
    // cost; follow-up pages stream behind it, spaced by the link
    // bandwidth (or the engine's minimum pipeline interval).
    Tick when = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        const ArenaFrame &frame = arena_->frame(batch[i]);
        const BackendModel &model = modelOf(frame.asid);
        const Tick cost =
            i == 0 ? model.transferNs(cfg_.pageBytes)
                   : std::max(model.streamNs(cfg_.pageBytes),
                              cfg_.pipelineIntervalNs);
        when += cost;
        DrainItem item{batch[i], frame.stamp,    frame.dirtyEpoch,
                       frame.asid, frame.vpn,
                       spaceGen(frame.asid),     frame.data};
        const bool last = i + 1 == batch.size();
        const Tick issued_at = events_.now();
        events_.scheduleIn(
            when,
            [this, item = std::move(item), issued_at, cost, last] {
                completeDrain(item, issued_at, cost, last);
            },
            "tier-drain");
    }
}

void
MemoryTier::completeDrain(const DrainItem &item, Tick issued_at,
                          Tick cost, bool last)
{
    if (spaceGen(item.asid) == item.spaceGen) {
        images_.store(item.asid, item.vpn, item.data);
        ++pagesDrained_;
        trace(obs::EventKind::TierEvict, issued_at,
              events_.now() - issued_at, item.asid, item.vpn,
              static_cast<std::uint8_t>(backendOf(item.asid)));
    }
    // The slot is only cleaned if it still holds the very image this
    // drain captured: dropSpace or reuse bumps the stamp, a newer
    // page-out of the same page bumps the dirty epoch — either way
    // the frame stays as it is (dirty data must not be lost).
    const ArenaFrame &frame = arena_->frame(item.slot);
    if (frame.valid && frame.stamp == item.stamp &&
        frame.dirtyEpoch == item.dirtyEpoch && frame.dirty) {
        arena_->markClean(item.slot);
    }
    servicePending();
    (void)cost;
    if (last)
        startBatch();
}

void
MemoryTier::servicePending()
{
    while (!pending_.empty() &&
           (arena_->hasFree() || arena_->cleanCount() > 0)) {
        PendingStore req = std::move(pending_.front());
        pending_.pop_front();
        storeStallNs_ +=
            static_cast<double>(events_.now() - req.enqueuedAt);
        acceptStore(req.asid, req.vpn, std::move(req.data));
        trace(obs::EventKind::TierStore, req.enqueuedAt,
              events_.now() - req.enqueuedAt, req.asid, req.vpn, 1);
        req.done();
    }
}

// --------------------------------------------------------------------
// Prefetcher
// --------------------------------------------------------------------

void
MemoryTier::updateStream(Asid asid, std::uint64_t vpn)
{
    Stream &s = streams_[asid];
    if (s.streak > 0 && vpn == s.lastVpn + 1)
        ++s.streak;
    else
        s.streak = 1;
    s.lastVpn = vpn;
}

void
MemoryTier::issuePrefetches(Asid asid, std::uint64_t vpn)
{
    if (cfg_.prefetchDepth == 0)
        return;
    const Stream &s = streams_[asid];
    if (s.streak < cfg_.prefetchMinStreak)
        return;
    const std::uint64_t gen = s.gen;
    const BackendModel &model = modelOf(asid);
    for (std::uint32_t d = 1; d <= cfg_.prefetchDepth; ++d) {
        const std::uint64_t next = vpn + d;
        if (arena_->lookup(asid, next))
            continue;
        if (!images_.contains(asid, next))
            break; // stream ran off the stored region
        if (!arena_->hasFree() && arena_->cleanCount() == 0)
            break; // no room, don't queue speculative work
        // Pull the image now (counts the one real backend fetch) and
        // install it once the backend transfer has elapsed — unless
        // the stream was cancelled or the space dropped meanwhile.
        const auto *stored = images_.fetch(asid, next);
        auto image =
            std::make_shared<std::vector<std::uint8_t>>(*stored);
        ++prefetchIssued_;
        const Tick issued_at = events_.now();
        const std::uint64_t sgen = spaceGen(asid);
        events_.scheduleIn(
            model.transferNs(cfg_.pageBytes) +
                d * cfg_.pipelineIntervalNs,
            [this, asid, next, gen, sgen, image, issued_at] {
                const Stream &cur = streams_[asid];
                if (cur.gen != gen || spaceGen(asid) != sgen) {
                    ++prefetchCancelled_;
                    return;
                }
                if (arena_->lookup(asid, next))
                    return; // demand path beat us to it
                if (!arena_->hasFree()) {
                    if (arena_->cleanCount() == 0)
                        return; // arena filled up with dirty work
                    arena_->reclaimOldestClean();
                    ++cleanEvictions_;
                }
                arena_->insert(asid, next, *image, false, true);
                arenaPeak_.set(arena_->peakUsed());
                trace(obs::EventKind::TierPrefetch, issued_at, 0,
                      asid, next);
            },
            "tier-prefetch");
    }
}

void
MemoryTier::cancelPrefetch(Asid asid)
{
    const auto it = streams_.find(asid);
    if (it == streams_.end())
        return;
    ++it->second.gen;
    it->second.streak = 0;
}

// --------------------------------------------------------------------
// Space teardown
// --------------------------------------------------------------------

void
MemoryTier::dropSpace(Asid asid)
{
    ++spaceGen_[asid];
    images_.dropSpace(asid);
    cancelPrefetch(asid);
    if (!arena_)
        return;
    for (const std::uint32_t slot : arena_->slotsOf(asid))
        arena_->release(slot);
    // Parked page-outs of the dropped space will never find a home
    // worth keeping; accept-and-forget so their requesters unblock.
    for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->asid == asid) {
            storeStallNs_ += static_cast<double>(events_.now() -
                                                 it->enqueuedAt);
            it->done();
            it = pending_.erase(it);
        } else {
            ++it;
        }
    }
    servicePending();
}

// --------------------------------------------------------------------
// Stats / trace
// --------------------------------------------------------------------

void
MemoryTier::trace(obs::EventKind kind, Tick at, Tick dur, Asid asid,
                  std::uint64_t vpn, std::uint8_t aux)
{
    if (tracer_ == nullptr)
        return;
    obs::TraceEvent event;
    event.at = at;
    event.addr = vpn * cfg_.pageBytes;
    event.arg0 = dur;
    event.arg1 = vpn;
    event.master = asid;
    event.track = track_;
    event.kind = kind;
    event.aux = aux;
    tracer_->record(event);
}

void
MemoryTier::registerStats(StatGroup &group) const
{
    group.addCounter("image_stores", "page images written durably",
                     images_.stores());
    group.addCounter("image_fetches", "page images read back",
                     images_.fetches());
    group.addCounter("arena_hits", "page-ins served from the arena",
                     arenaHits_);
    group.addCounter("backend_fetches",
                     "page-ins that went to the backend",
                     backendFetches_);
    group.addCounter("zero_fills", "page-ins of never-stored pages",
                     zeroFills_);
    group.addCounter("stores_accepted",
                     "page-outs accepted into the arena",
                     storesAccepted_);
    group.addCounter("store_stalls",
                     "page-outs parked on an exhausted arena",
                     storeStalls_);
    group.addScalar("store_stall_ns",
                    "total ns page-outs spent parked", storeStallNs_);
    group.addCounter("drain_batches", "reclaim batches issued",
                     drainBatches_);
    group.addCounter("pages_drained",
                     "dirty pages written back to the backend",
                     pagesDrained_);
    group.addCounter("clean_evictions",
                     "clean arena frames reclaimed for new pages",
                     cleanEvictions_);
    group.addCounter("prefetches_issued",
                     "stream prefetches issued to the backend",
                     prefetchIssued_);
    group.addCounter("prefetch_hits",
                     "page-ins served by a prefetched frame",
                     prefetchHits_);
    group.addCounter("prefetches_cancelled",
                     "in-flight prefetches dropped by cancellation",
                     prefetchCancelled_);
    group.addScalar("arena_peak", "high-water mark of arena frames",
                    arenaPeak_);
    group.addHistogram("batch_sizes", "drain batch sizes",
                       batchSizes_);
    group.addHistogram("drain_queue_depth",
                       "dirty frames queued when a batch starts",
                       drainQueueDepth_);
}

} // namespace vmp::backing
