/**
 * @file
 * Backend models of the memory tier: where a page image physically
 * lives once it leaves the node's frame arena, and what one page
 * transfer to/from that medium costs. Three media are modeled, chosen
 * per address space:
 *
 *  - LocalRam: a second RAM bank on the memory node itself — fixed
 *    controller latency plus memcpy-rate streaming.
 *  - RemoteNode: another node's RAM behind an interconnect hop —
 *    request latency + hop latency each way + link-bandwidth
 *    streaming, the far-memory configuration.
 *  - Disk: the paper-era paging disk — one flat seek+transfer stamp
 *    (kept equal to the legacy BackingStore latency so the mirror
 *    tier reproduces the old timing exactly).
 */

#ifndef VMP_BACKING_BACKEND_HH
#define VMP_BACKING_BACKEND_HH

#include <cstdint>

#include "sim/types.hh"

namespace vmp::backing
{

/** Storage medium behind the frame arena. */
enum class BackendKind : std::uint8_t
{
    LocalRam = 0,
    RemoteNode,
    Disk,
};

/** Number of backend kinds (array-sizing constant). */
inline constexpr std::size_t kBackendKinds =
    static_cast<std::size_t>(BackendKind::Disk) + 1;

/** Stable lower-case backend name (configs, artifacts). */
inline const char *
backendName(BackendKind kind)
{
    switch (kind) {
      case BackendKind::LocalRam: return "local_ram";
      case BackendKind::RemoteNode: return "remote_node";
      case BackendKind::Disk: return "disk";
    }
    return "unknown";
}

/** Latency + bandwidth model of one backend medium. */
struct BackendModel
{
    /** Fixed per-request latency (controller, seek, protocol). */
    Tick fixedLatencyNs = 0;
    /** Extra interconnect hop (RemoteNode; charged once per request). */
    Tick hopLatencyNs = 0;
    /** Streaming cost per byte (0 = bandwidth folded into the fixed
     *  stamp, as with the flat disk model). */
    double nsPerByte = 0.0;

    /** Full cost of one page transfer of @p bytes. */
    Tick
    transferNs(std::uint32_t bytes) const
    {
        return fixedLatencyNs + hopLatencyNs +
            static_cast<Tick>(nsPerByte * static_cast<double>(bytes));
    }

    /** Streaming-only cost (pipelined follow-up pages in a batch). */
    Tick
    streamNs(std::uint32_t bytes) const
    {
        return static_cast<Tick>(nsPerByte *
                                 static_cast<double>(bytes));
    }

    /**
     * Default model per medium. @p disk_latency_ns preserves the
     * legacy flat disk stamp (vm::VmConfig::diskLatencyNs).
     */
    static BackendModel
    forKind(BackendKind kind, Tick disk_latency_ns)
    {
        BackendModel model;
        switch (kind) {
          case BackendKind::LocalRam:
            model.fixedLatencyNs = usec(1);
            model.nsPerByte = 0.25; // ~4 GB/s bank-to-bank copy
            break;
          case BackendKind::RemoteNode:
            model.fixedLatencyNs = usec(3);
            model.hopLatencyNs = usec(5);
            model.nsPerByte = 1.0; // ~1 GB/s far-memory link
            break;
          case BackendKind::Disk:
            model.fixedLatencyNs = disk_latency_ns;
            break;
        }
        return model;
    }
};

} // namespace vmp::backing

#endif // VMP_BACKING_BACKEND_HH
