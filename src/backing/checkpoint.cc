#include "backing/checkpoint.hh"

#include "sim/logging.hh"

namespace vmp::backing
{

FrameCheckpointer::FrameCheckpointer(mem::PhysMem &memory,
                                     PageStore &images, Asid asid)
    : mem_(memory), images_(images), asid_(asid)
{
    if (images_.pageBytes() != mem_.pageBytes())
        panic("frame checkpointer: image granule ",
              images_.pageBytes(), " != cache page ",
              mem_.pageBytes());
}

void
FrameCheckpointer::install(mem::VmeBus &bus)
{
    if (installed_)
        panic("frame checkpointer: installed twice");
    installed_ = true;
    bus.addTxObserver([this](const mem::BusTransaction &tx,
                             const mem::TxResult &result) {
        observe(tx, result);
    });
}

void
FrameCheckpointer::observe(const mem::BusTransaction &tx,
                           const mem::TxResult &result)
{
    if (result.aborted)
        return;
    const bool acquire = tx.type == mem::TxType::ReadPrivate ||
        tx.type == mem::TxType::AssertOwnership;
    const bool writeback = tx.type == mem::TxType::WriteBack;
    if (!acquire && !writeback)
        return;

    const std::uint32_t page = mem_.pageBytes();
    const std::uint64_t frame = tx.paddr / page;
    const Addr base = static_cast<Addr>(frame) * page;
    std::vector<std::uint8_t> image(page);
    mem_.readBlock(base, image.data(), page);
    images_.store(asid_, frame, std::move(image));
    if (acquire)
        ++checkpoints_;
    else
        ++refreshes_;
}

void
FrameCheckpointer::registerStats(StatGroup &group) const
{
    group.addCounter("frame_checkpoints",
                     "frames snapshotted at ownership acquisition",
                     checkpoints_);
    group.addCounter("checkpoint_refreshes",
                     "snapshots refreshed at write-back", refreshes_);
}

} // namespace vmp::backing
