/**
 * @file
 * Bounded pool of local page frames on the memory-tier node, with
 * explicit occupancy accounting. Incoming page-outs land here (dirty)
 * and are drained to the configured backend by the reclaim engine;
 * fetched and prefetched images are cached here (clean) until the
 * space is needed. Clean frames are reclaimable instantly; dirty
 * frames pin their slot until drained.
 *
 * All replacement orders are FIFO queues, so arena behavior is fully
 * deterministic for a given request sequence.
 */

#ifndef VMP_BACKING_FRAME_ARENA_HH
#define VMP_BACKING_FRAME_ARENA_HH

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "sim/types.hh"

namespace vmp::backing
{

/** One node-local frame. */
struct ArenaFrame
{
    Asid asid = 0;
    std::uint64_t vpn = 0;
    bool valid = false;
    bool dirty = false;
    /** Installed by the prefetcher and not yet demanded. */
    bool prefetched = false;
    /** Bumped on release/insert: in-flight drain work captures the
     *  stamp and skips frames that were reassigned meanwhile. */
    std::uint64_t stamp = 0;
    /** Bumped on every markDirty: a drain only cleans the frame if no
     *  newer page-out landed while the batch was in flight. */
    std::uint64_t dirtyEpoch = 0;
    std::vector<std::uint8_t> data;
};

/** The bounded frame pool. */
class FrameArena
{
  public:
    FrameArena(std::uint32_t frames, std::uint32_t page_bytes);

    std::uint32_t capacity() const { return capacity_; }
    std::uint32_t pageBytes() const { return pageBytes_; }
    std::uint32_t used() const { return used_; }
    std::uint32_t freeSlots() const { return capacity_ - used_; }
    std::uint32_t dirtyCount() const { return dirty_; }
    std::uint32_t cleanCount() const { return used_ - dirty_; }
    /** High-water mark of used frames over the run. */
    std::uint32_t peakUsed() const { return peakUsed_; }

    /** Slot holding <asid, vpn>, if resident. */
    std::optional<std::uint32_t> lookup(Asid asid,
                                        std::uint64_t vpn) const;

    bool hasFree() const { return used_ < capacity_; }

    /** Install a page into a free slot (panics when full — callers
     *  must make room first). Returns the slot. */
    std::uint32_t insert(Asid asid, std::uint64_t vpn,
                         std::vector<std::uint8_t> data, bool dirty,
                         bool prefetched = false);

    /** Overwrite a resident page's image and mark it dirty. */
    void overwrite(std::uint32_t slot, std::vector<std::uint8_t> data);

    /** Mark a drained frame clean (reclaimable). */
    void markClean(std::uint32_t slot);

    /** Clear the prefetched flag (first demand hit on the frame). */
    void markDemanded(std::uint32_t slot);

    /** Invalidate a slot, returning it to the free pool. */
    void release(std::uint32_t slot);

    /** Oldest clean frame released to make room; nullopt if none. */
    std::optional<std::uint32_t> reclaimOldestClean();

    /**
     * Pop up to @p max dirty frames, oldest first, for one drain
     * batch. The frames stay dirty (and resident) until markClean();
     * they simply leave the drain queue so the next batch doesn't
     * collect them twice.
     */
    std::vector<std::uint32_t> takeDirtyBatch(std::uint32_t max);

    /** Dirty frames currently queued for drain (not yet batched). */
    std::size_t drainQueueDepth() const { return dirtyFifo_.size(); }

    /** All resident slots of an address space. */
    std::vector<std::uint32_t> slotsOf(Asid asid) const;

    const ArenaFrame &frame(std::uint32_t slot) const;

  private:
    ArenaFrame &at(std::uint32_t slot);
    static void eraseFrom(std::deque<std::uint32_t> &fifo,
                          std::uint32_t slot);

    std::uint32_t capacity_;
    std::uint32_t pageBytes_;
    std::uint32_t used_ = 0;
    std::uint32_t dirty_ = 0;
    std::uint32_t peakUsed_ = 0;
    std::uint64_t nextStamp_ = 1;
    std::vector<ArenaFrame> frames_;
    std::deque<std::uint32_t> freeList_;
    /** Dirty frames awaiting a drain batch, oldest first. */
    std::deque<std::uint32_t> dirtyFifo_;
    /** Clean frames in reclaim order, oldest first. */
    std::deque<std::uint32_t> cleanFifo_;
    std::map<std::pair<Asid, std::uint64_t>, std::uint32_t> index_;
};

} // namespace vmp::backing

#endif // VMP_BACKING_FRAME_ARENA_HH
