/**
 * @file
 * FrameCheckpointer: keeps the memory tier's image plane a live shadow
 * of physical memory, frame by frame, so board recovery can restore
 * every orphaned frame instead of zero-filling it (pages_lost == 0 by
 * construction).
 *
 * The model is an NVRAM-shadowed memory board: the board mirrors
 * writes into stable storage as they land, so shadowing adds no
 * simulated time and no bus traffic. The attach point is the bus
 * TxObserver, which fires after a transaction's data movement and
 * side-effect updates but before the requester's completion — the
 * exact instants at which main memory is authoritative for a frame:
 *
 *  - ReadPrivate / AssertOwnership completing means every other cache
 *    flushed or discarded its copy; memory now holds the last written
 *    image, and from here on the new owner may dirty it silently. We
 *    snapshot at that handoff.
 *  - WriteBack completing means the owner pushed its dirty data;
 *    memory is current again. We refresh the snapshot.
 *
 * Between those points an owner's cache may be ahead of memory — but
 * that is precisely the data a failstop loses anyway; recovery's
 * contract (PR 4) is to restore the last *globally visible* image,
 * which is what this checkpoint holds.
 */

#ifndef VMP_BACKING_CHECKPOINT_HH
#define VMP_BACKING_CHECKPOINT_HH

#include <cstdint>

#include "backing/page_store.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "sim/stats.hh"

namespace vmp::backing
{

/** Shadows ownership-transfer points of a bus into a PageStore. */
class FrameCheckpointer
{
  public:
    /**
     * Snapshots of @p memory are stored in @p images keyed
     * <@p asid, frame-number> — the RecoveryManager convention
     * (vpn == physical frame). @p asid should be a reserved space id
     * so checkpoints never collide with paging images.
     */
    FrameCheckpointer(mem::PhysMem &memory, PageStore &images,
                      Asid asid);

    /** Hook @p bus; call once. */
    void install(mem::VmeBus &bus);

    Asid asid() const { return asid_; }
    const Counter &checkpoints() const { return checkpoints_; }
    const Counter &refreshes() const { return refreshes_; }
    void registerStats(StatGroup &group) const;

  private:
    void observe(const mem::BusTransaction &tx,
                 const mem::TxResult &result);

    mem::PhysMem &mem_;
    PageStore &images_;
    Asid asid_;
    bool installed_ = false;
    /** First snapshot of a frame (ownership acquisition). */
    Counter checkpoints_;
    /** Snapshot refresh on write-back. */
    Counter refreshes_;
};

} // namespace vmp::backing

#endif // VMP_BACKING_CHECKPOINT_HH
