/**
 * @file
 * Global memory-budget controller in the MemoryBalancer style: a
 * fixed pool of page frames is divided into per-client `max_memory`
 * grants, and a periodic controller epoch rebalances the grants from
 * each client's observed fault pressure since the last epoch. Shares
 * follow the square root of pressure — the classic miss-ratio-curve
 * approximation that moving a frame to the client with the steeper
 * curve buys more than it costs — with a floor so no client is starved
 * outright.
 *
 * Clients are abstract ids (the vm layer registers one per address
 * space; a hierarchical system could register one per cluster). The
 * controller only *advises*: the vm eviction policy prefers victims
 * from over-grant clients, and a shrink hook tells clients their grant
 * fell below current occupancy so they can page out proactively.
 */

#ifndef VMP_BACKING_BUDGET_HH
#define VMP_BACKING_BUDGET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/event_tracer.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace vmp::backing
{

/** Budget-controller knobs. */
struct BudgetConfig
{
    /** Controller epoch (grant recomputation period). */
    Tick epochNs = usec(2000);
    /** Total frames to divide among clients. */
    std::uint32_t totalFrames = 0;
    /** No grant falls below this floor. */
    std::uint32_t minGrant = 4;
};

/** The grant arbiter. */
class BudgetController
{
  public:
    /** Called when a rebalance leaves a client's grant below its
     *  current occupancy (the client should shed pages). */
    using ShrinkHook =
        std::function<void(std::uint32_t client, std::uint32_t grant)>;

    BudgetController(EventQueue &events, const BudgetConfig &config);

    const BudgetConfig &config() const { return cfg_; }

    /** Register a client; the pool is re-split evenly on entry. */
    std::uint32_t addClient(const std::string &name);

    std::size_t clientCount() const { return clients_.size(); }
    const std::string &clientName(std::uint32_t client) const;

    /** One fault charged to @p client (pressure input). */
    void noteFault(std::uint32_t client);
    /** Occupancy delta for @p client (+1 page in, -1 page out). */
    void noteUse(std::uint32_t client, std::int32_t delta);

    std::uint32_t grantOf(std::uint32_t client) const;
    std::uint32_t usedOf(std::uint32_t client) const;
    /** True when the client occupies more frames than granted. */
    bool overGrant(std::uint32_t client) const;

    void setShrinkHook(ShrinkHook hook) { shrink_ = std::move(hook); }

    /** Start/stop the recurring controller epoch. */
    void start();
    void stop() { running_ = false; }
    bool running() const { return running_; }

    /**
     * Recompute grants from the pressure observed since the last
     * call: share_i proportional to sqrt(faults_i + 1) over the pool
     * above the per-client floor, remainders distributed in client-id
     * order (deterministic). Fault counters reset afterwards.
     */
    void rebalance();

    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        track_ = track;
    }

    const Counter &epochs() const { return epochs_; }
    const Counter &grantChanges() const { return grantChanges_; }
    const Counter &shrinks() const { return shrinks_; }
    void registerStats(StatGroup &group) const;

  private:
    struct Client
    {
        std::string name;
        std::uint32_t grant = 0;
        std::uint32_t used = 0;
        std::uint64_t epochFaults = 0;
    };

    void scheduleEpoch();
    void splitEvenly();

    EventQueue &events_;
    BudgetConfig cfg_;
    std::vector<Client> clients_;
    ShrinkHook shrink_;
    bool running_ = false;

    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t track_ = 0;

    Counter epochs_;
    Counter grantChanges_;
    Counter shrinks_;
    Histogram grantSpread_{16, 8};
};

} // namespace vmp::backing

#endif // VMP_BACKING_BUDGET_HH
