#include "backing/page_store.hh"

#include "sim/logging.hh"

namespace vmp::backing
{

void
PageStore::store(Asid asid, std::uint64_t vpn,
                 std::vector<std::uint8_t> data)
{
    if (data.size() != pageBytes_)
        panic("page store: image of ", data.size(), " bytes (expected ",
              pageBytes_, ")");
    pages_[{asid, vpn}] = std::move(data);
    ++stores_;
}

const std::vector<std::uint8_t> *
PageStore::fetch(Asid asid, std::uint64_t vpn)
{
    const auto it = pages_.find({asid, vpn});
    if (it == pages_.end())
        return nullptr;
    ++fetches_;
    return &it->second;
}

std::optional<std::vector<std::uint8_t>>
PageStore::take(Asid asid, std::uint64_t vpn)
{
    const auto it = pages_.find({asid, vpn});
    if (it == pages_.end())
        return std::nullopt;
    ++fetches_;
    std::vector<std::uint8_t> image = std::move(it->second);
    pages_.erase(it);
    return image;
}

bool
PageStore::contains(Asid asid, std::uint64_t vpn) const
{
    return pages_.find({asid, vpn}) != pages_.end();
}

void
PageStore::dropSpace(Asid asid)
{
    for (auto it = pages_.begin(); it != pages_.end();) {
        if (it->first.first == asid)
            it = pages_.erase(it);
        else
            ++it;
    }
}

} // namespace vmp::backing
