/**
 * @file
 * Cache-level scalar types: slot flags (the six per-slot flag bits the
 * VMP board maintains, Section 4) and the <ASID, virtual page> tag the
 * cache matches on.
 */

#ifndef VMP_CACHE_TYPES_HH
#define VMP_CACHE_TYPES_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace vmp::cache
{

/**
 * Per-slot flag bits, exactly the set listed in Section 4: valid,
 * modified, exclusive-ownership, supervisor writable, user readable and
 * user writable.
 */
enum SlotFlag : std::uint8_t
{
    FlagValid = 1 << 0,
    FlagModified = 1 << 1,
    FlagExclusive = 1 << 2,
    FlagSupWritable = 1 << 3,
    FlagUserReadable = 1 << 4,
    FlagUserWritable = 1 << 5,
};

using SlotFlags = std::uint8_t;

/** Readable rendering of a flag set, e.g. "V-M-E-SW-UR-UW". */
std::string flagsToString(SlotFlags flags);

/**
 * Cache tag: the <ASID, virtual page number> pair the cache matches on.
 * Packed so FastCacheSim can use it as a plain integer key.
 */
struct CacheTag
{
    Asid asid = 0;
    /** Virtual address divided by the cache page size. */
    std::uint64_t vpn = 0;

    bool operator==(const CacheTag &other) const = default;

    std::uint64_t
    packed() const
    {
        return (static_cast<std::uint64_t>(asid) << 52) | vpn;
    }
};

} // namespace vmp::cache

#endif // VMP_CACHE_TYPES_HH
