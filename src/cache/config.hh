/**
 * @file
 * Cache geometry configuration. The VMP prototype cache is 4-way set
 * associative, 256 KBytes, with a configurable cache page size of 128,
 * 256 or 512 bytes (Sections 2 and 4); this struct generalizes that while
 * validating the prototype's constraints by default.
 */

#ifndef VMP_CACHE_CONFIG_HH
#define VMP_CACHE_CONFIG_HH

#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace vmp::cache
{

/** Geometry of one processor's cache. */
struct CacheConfig
{
    /** Cache page ("block") size in bytes; prototype: 128/256/512. */
    std::uint32_t pageBytes = 256;
    /** Associativity; the prototype supports 1 to 4 ways. */
    std::uint32_t ways = 4;
    /** Number of sets; the prototype supports 16 to 256 pages per way. */
    std::uint32_t sets = 256;
    /**
     * Whether slots carry real byte storage. Timing-only sweeps (Figure
     * 4) turn this off; the multiprocessor model keeps it on so the
     * consistency protocol moves real data.
     */
    bool storeData = true;

    std::uint64_t
    totalBytes() const
    {
        return static_cast<std::uint64_t>(pageBytes) * ways * sets;
    }

    std::uint64_t totalSlots() const { return std::uint64_t(ways) * sets; }

    /** Throws FatalError if the geometry is not simulable. */
    void check() const;

    /** e.g. "256KiB 4-way 256B-pages". */
    std::string toString() const;

    /** Convenience: geometry for a given total size and page size. */
    static CacheConfig forSize(std::uint64_t total_bytes,
                               std::uint32_t page_bytes,
                               std::uint32_t ways = 4,
                               bool store_data = true);
};

} // namespace vmp::cache

#endif // VMP_CACHE_CONFIG_HH
