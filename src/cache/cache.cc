#include "cache/cache.hh"

#include <cstring>
#include <sstream>

#include "sim/logging.hh"

namespace vmp::cache
{

void
CacheConfig::check() const
{
    if (!isPowerOf2(pageBytes) || pageBytes < 32 || pageBytes > 4096)
        fatal("cache page size must be a power of two in [32, 4096], "
              "got ", pageBytes);
    if (ways == 0 || ways > 16)
        fatal("cache associativity must be in [1, 16], got ", ways);
    if (!isPowerOf2(sets) || sets == 0)
        fatal("cache set count must be a power of two, got ", sets);
}

std::string
CacheConfig::toString() const
{
    std::ostringstream os;
    os << totalBytes() / 1024 << "KiB " << ways << "-way " << pageBytes
       << "B-pages";
    return os.str();
}

CacheConfig
CacheConfig::forSize(std::uint64_t total_bytes, std::uint32_t page_bytes,
                     std::uint32_t ways, bool store_data)
{
    CacheConfig cfg;
    cfg.pageBytes = page_bytes;
    cfg.ways = ways;
    cfg.storeData = store_data;
    const std::uint64_t per_way = total_bytes / ways;
    if (per_way == 0 || per_way % page_bytes != 0)
        fatal("cache size ", total_bytes, " not divisible into ", ways,
              " ways of ", page_bytes, "B pages");
    cfg.sets = static_cast<std::uint32_t>(per_way / page_bytes);
    cfg.check();
    if (cfg.totalBytes() != total_bytes)
        fatal("cache geometry mismatch for total size ", total_bytes);
    return cfg;
}

std::string
flagsToString(SlotFlags flags)
{
    std::string out;
    const auto add = [&out, flags](SlotFlag bit, const char *name) {
        if (flags & bit) {
            if (!out.empty())
                out += '-';
            out += name;
        }
    };
    add(FlagValid, "V");
    add(FlagModified, "M");
    add(FlagExclusive, "E");
    add(FlagSupWritable, "SW");
    add(FlagUserReadable, "UR");
    add(FlagUserWritable, "UW");
    return out.empty() ? "none" : out;
}

Cache::Cache(const CacheConfig &config) : cfg_(config)
{
    cfg_.check();
    slots_.resize(cfg_.totalSlots());
    if (cfg_.storeData) {
        for (auto &s : slots_)
            s.data.assign(cfg_.pageBytes, 0);
    }
}

CacheTag
Cache::tagFor(Asid asid, Addr vaddr) const
{
    return CacheTag{asid, vaddr / cfg_.pageBytes};
}

std::uint32_t
Cache::setOf(Addr vaddr) const
{
    return static_cast<std::uint32_t>((vaddr / cfg_.pageBytes) %
                                      cfg_.sets);
}

std::uint32_t
Cache::offsetOf(Addr vaddr) const
{
    return static_cast<std::uint32_t>(vaddr % cfg_.pageBytes);
}

SlotIndex
Cache::indexOf(std::uint32_t set, std::uint32_t way) const
{
    return set * cfg_.ways + way;
}

std::optional<std::uint32_t>
Cache::findWay(std::uint32_t set, const CacheTag &tag) const
{
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const Slot &s = slots_[indexOf(set, way)];
        if (s.valid() && s.tag == tag)
            return way;
    }
    return std::nullopt;
}

SlotIndex
Cache::lruOf(std::uint32_t set) const
{
    SlotIndex victim = indexOf(set, 0);
    std::uint64_t oldest = slots_[victim].lastUse;
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const SlotIndex idx = indexOf(set, way);
        const Slot &s = slots_[idx];
        // Invalid slots are always preferred victims.
        if (!s.valid())
            return idx;
        if (s.lastUse < oldest) {
            oldest = s.lastUse;
            victim = idx;
        }
    }
    return victim;
}

AccessResult
Cache::probe(Asid asid, Addr vaddr, bool write, bool supervisor) const
{
    const CacheTag tag = tagFor(asid, vaddr);
    const std::uint32_t set = setOf(vaddr);
    AccessResult res;
    res.suggestedVictim = lruOf(set);

    const auto way = findWay(set, tag);
    if (!way) {
        res.miss = MissKind::NoMatch;
        return res;
    }
    const SlotIndex idx = indexOf(set, *way);
    const Slot &s = slots_[idx];
    res.slot = idx;

    const bool perm_ok = supervisor
        ? (!write || (s.flags & FlagSupWritable))
        : (write ? (s.flags & FlagUserWritable) != 0
                 : (s.flags & FlagUserReadable) != 0);
    if (!perm_ok) {
        res.miss = MissKind::Protection;
        return res;
    }
    if (write && !s.exclusive()) {
        res.miss = MissKind::WriteShared;
        return res;
    }
    res.hit = true;
    return res;
}

AccessResult
Cache::access(Asid asid, Addr vaddr, bool write, bool supervisor)
{
    AccessResult res = probe(asid, vaddr, write, supervisor);
    if (res.hit) {
        Slot &s = slots_[*res.slot];
        s.lastUse = useClock_++;
        if (write)
            s.flags |= FlagModified;
        ++hits_;
    } else {
        ++misses_;
        if (res.miss == MissKind::WriteShared)
            ++writeShared_;
        else if (res.miss == MissKind::Protection)
            ++protection_;
    }
    return res;
}

void
Cache::fill(SlotIndex slot_index, const CacheTag &tag, SlotFlags flags)
{
    if (slot_index >= slots_.size())
        panic("cache fill: slot ", slot_index, " out of range");
    // The tag must land in the set the hardware indexes it into.
    if (tag.vpn % cfg_.sets != slot_index / cfg_.ways)
        panic("cache fill: tag vpn ", tag.vpn, " does not map to set ",
              slot_index / cfg_.ways);
    Slot &s = slots_[slot_index];
    s.tag = tag;
    s.flags = static_cast<SlotFlags>(flags | FlagValid);
    s.lastUse = useClock_++;
    if (cfg_.storeData)
        std::fill(s.data.begin(), s.data.end(), 0);
}

void
Cache::invalidate(SlotIndex slot_index)
{
    if (slot_index >= slots_.size())
        panic("cache invalidate: slot out of range");
    slots_[slot_index].flags = 0;
}

void
Cache::setFlags(SlotIndex slot_index, SlotFlags flags)
{
    if (slot_index >= slots_.size())
        panic("cache setFlags: slot out of range");
    if (!(flags & FlagValid))
        panic("cache setFlags: use invalidate() to clear a slot");
    slots_[slot_index].flags = flags;
}

Slot &
Cache::slot(SlotIndex index)
{
    if (index >= slots_.size())
        panic("cache slot index out of range");
    return slots_[index];
}

const Slot &
Cache::slot(SlotIndex index) const
{
    if (index >= slots_.size())
        panic("cache slot index out of range");
    return slots_[index];
}

std::vector<SlotIndex>
Cache::findAll(const CacheTag &tag) const
{
    std::vector<SlotIndex> out;
    // A given <asid, vpn> can only live in one set, but aliases (same
    // physical page under different virtual addresses) are found by the
    // software physical-to-slot tables, not here.
    const std::uint32_t set =
        static_cast<std::uint32_t>(tag.vpn % cfg_.sets);
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const SlotIndex idx = indexOf(set, way);
        const Slot &s = slots_[idx];
        if (s.valid() && s.tag == tag)
            out.push_back(idx);
    }
    return out;
}

SlotIndex
Cache::victimFor(Addr vaddr) const
{
    return lruOf(setOf(vaddr));
}

void
Cache::writeBytes(SlotIndex slot_index, std::uint32_t offset,
                  const void *src, std::uint32_t len)
{
    if (!cfg_.storeData)
        panic("cache writeBytes without data storage");
    Slot &s = slot(slot_index);
    if (offset + len > cfg_.pageBytes)
        panic("cache writeBytes: range beyond page");
    std::memcpy(s.data.data() + offset, src, len);
}

void
Cache::readBytes(SlotIndex slot_index, std::uint32_t offset, void *dst,
                 std::uint32_t len) const
{
    if (!cfg_.storeData)
        panic("cache readBytes without data storage");
    const Slot &s = slot(slot_index);
    if (offset + len > cfg_.pageBytes)
        panic("cache readBytes: range beyond page");
    std::memcpy(dst, s.data.data() + offset, len);
}

std::uint32_t
Cache::validCount() const
{
    std::uint32_t n = 0;
    for (const auto &s : slots_)
        if (s.valid())
            ++n;
    return n;
}

double
Cache::missRatio() const
{
    const std::uint64_t total = hits_.value() + misses_.value();
    return total == 0
        ? 0.0
        : static_cast<double>(misses_.value()) /
            static_cast<double>(total);
}

void
Cache::resetStats()
{
    hits_.reset();
    misses_.reset();
    writeShared_.reset();
    protection_.reset();
}

void
Cache::registerStats(StatGroup &group) const
{
    // "cache_" prefix: these land in the same per-CPU group as the
    // controller's counters, whose "misses" views the same events
    // from the protocol side.
    group.addCounter("cache_hits", "references satisfied by the cache",
                     hits_);
    group.addCounter("cache_misses", "references that missed", misses_);
    group.addCounter("cache_write_shared_misses",
                     "write hits needing ownership", writeShared_);
    group.addCounter("cache_protection_misses",
                     "accesses denied by protection flags", protection_);
}

} // namespace vmp::cache
