/**
 * @file
 * The virtually addressed, set-associative VMP cache.
 *
 * The hardware modelled here is deliberately dumb, as in the paper: it
 * matches <ASID, virtual address> tags, keeps six flag bits per slot,
 * tracks LRU to *suggest* a victim slot on miss, and raises a miss
 * signal (returned, not thrown) that the software miss handler acts on.
 * All policy — translation, replacement, consistency — lives outside, in
 * software models (cpu::MissHandler, proto::OwnershipProtocol).
 */

#ifndef VMP_CACHE_CACHE_HH
#define VMP_CACHE_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/config.hh"
#include "cache/types.hh"
#include "sim/stats.hh"

namespace vmp::cache
{

/** Dense identifier of a slot: set * ways + way. */
using SlotIndex = std::uint32_t;

/** One cache slot: tag, flags, LRU stamp and (optionally) data. */
struct Slot
{
    CacheTag tag{};
    SlotFlags flags = 0;
    /** Monotonic last-use stamp for LRU victim suggestion. */
    std::uint64_t lastUse = 0;
    /** Page contents when CacheConfig::storeData is set. */
    std::vector<std::uint8_t> data;

    bool valid() const { return flags & FlagValid; }
    bool modified() const { return flags & FlagModified; }
    bool exclusive() const { return flags & FlagExclusive; }
};

/** Why an access could not be satisfied by the cache. */
enum class MissKind : std::uint8_t
{
    None = 0,
    /** No valid slot matches <ASID, page>. */
    NoMatch,
    /** Matching slot lacks the needed permission (e.g. user write). */
    Protection,
    /** Write hit on a shared (non-exclusive) copy: ownership needed. */
    WriteShared,
};

/** Result of presenting one reference to the cache. */
struct AccessResult
{
    bool hit = false;
    MissKind miss = MissKind::None;
    /** Matching slot on hit (or protection/ownership miss). */
    std::optional<SlotIndex> slot;
    /** Hardware-suggested victim slot for the referenced set. */
    SlotIndex suggestedVictim = 0;
};

/**
 * The cache proper. The single-master processor connection of the paper
 * translates to: exactly one component (the owning ProcessorBoard) calls
 * access(); everything else inspects or edits slots through the explicit
 * maintenance interface below, modelling the software's cache-control
 * region accesses.
 */
class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    const CacheConfig &config() const { return cfg_; }

    /** Tag for a given <asid, vaddr>. */
    CacheTag tagFor(Asid asid, Addr vaddr) const;
    /** Set index a virtual address maps to. */
    std::uint32_t setOf(Addr vaddr) const;
    /** Byte offset of @p vaddr within its cache page. */
    std::uint32_t offsetOf(Addr vaddr) const;

    /**
     * Present one reference. Updates LRU on hit. @p write requests write
     * access; @p supervisor selects the privilege checked against the
     * protection flags.
     */
    AccessResult access(Asid asid, Addr vaddr, bool write,
                        bool supervisor);

    /** Probe without updating LRU or counting stats. */
    AccessResult probe(Asid asid, Addr vaddr, bool write,
                       bool supervisor) const;

    // --- Maintenance interface (the "cache control" address region) ---

    /** Install @p tag with @p flags into @p slot, clearing old content. */
    void fill(SlotIndex slot, const CacheTag &tag, SlotFlags flags);
    /** Drop a slot (no write-back; that is software's job). */
    void invalidate(SlotIndex slot);
    /** Replace the flag bits of a valid slot. */
    void setFlags(SlotIndex slot, SlotFlags flags);

    Slot &slot(SlotIndex index);
    const Slot &slot(SlotIndex index) const;

    /** All slots currently matching tag (aliases share asid+vpn). */
    std::vector<SlotIndex> findAll(const CacheTag &tag) const;

    /** Hardware LRU suggestion for the set containing @p vaddr. */
    SlotIndex victimFor(Addr vaddr) const;

    /** Data plane: read/write bytes within a slot's page. */
    void writeBytes(SlotIndex slot, std::uint32_t offset,
                    const void *src, std::uint32_t len);
    void readBytes(SlotIndex slot, std::uint32_t offset, void *dst,
                   std::uint32_t len) const;

    /** Number of valid slots (for occupancy tests). */
    std::uint32_t validCount() const;

    // --- Statistics ---
    const Counter &hits() const { return hits_; }
    const Counter &misses() const { return misses_; }
    const Counter &writeSharedMisses() const { return writeShared_; }
    double missRatio() const;
    void resetStats();
    void registerStats(StatGroup &group) const;

  private:
    SlotIndex indexOf(std::uint32_t set, std::uint32_t way) const;
    /** Find the matching way in @p set, if any. */
    std::optional<std::uint32_t> findWay(std::uint32_t set,
                                         const CacheTag &tag) const;
    SlotIndex lruOf(std::uint32_t set) const;

    CacheConfig cfg_;
    std::vector<Slot> slots_;
    std::uint64_t useClock_ = 1;

    Counter hits_;
    Counter misses_;
    Counter writeShared_;
    Counter protection_;
};

} // namespace vmp::cache

#endif // VMP_CACHE_CACHE_HH
