/**
 * @file
 * The shared VMEbus model: single-master-at-a-time FIFO arbitration,
 * block transfers at the paper's sequential-access timing (300 ns first
 * 32-bit word, 100 ns per subsequent word, ~40 MB/s), a 150 ns
 * consistency-check/action-table-update interval overlapped with the
 * transfer, and abort semantics (an aborted transaction terminates at
 * the end of the current memory reference and moves no architected
 * data — write-back is the only transaction that modifies main memory).
 *
 * Bus monitors attach as BusWatcher instances; every watcher — including
 * the requester's own, which is what makes the alias "competing against
 * itself" trick of Section 3.3 work — observes every consistency-related
 * transaction and may interrupt its processor and/or abort the
 * transaction.
 */

#ifndef VMP_MEM_VME_BUS_HH
#define VMP_MEM_VME_BUS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "mem/bus_types.hh"
#include "mem/fault_hooks.hh"
#include "mem/phys_mem.hh"
#include "obs/event_tracer.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::mem
{

/** Timing parameters of bus and memory (Sections 2, 4 and 5.1). */
struct BusTiming
{
    /** First sequential access to a memory board. */
    Tick firstWordNs = 300;
    /** Each subsequent sequential 32-bit word. */
    Tick wordNs = 100;
    /** Consistency-check / action-table-update interval. */
    Tick checkNs = 150;
    /**
     * Bus occupancy of non-block transactions (assert-ownership,
     * notify, write-action-table): one address/check cycle.
     */
    Tick shortTxNs = 450;
    /** Occupancy of an aborted transaction (terminates at the end of
     *  the current memory reference). */
    Tick abortNs = 450;

    /** Block transfer occupancy for @p bytes (32-bit strobes). */
    Tick blockNs(std::uint32_t bytes) const;
    /** Total bus occupancy of a (successful) transaction. */
    Tick occupancy(TxType type, std::uint32_t bytes) const;
};

/**
 * Interface bus monitors implement to watch the bus. observe() is called
 * for every consistency-related transaction (on every watcher);
 * sideEffectUpdate() is called only on the requester's watcher when its
 * transaction completes unaborted, carrying the Section 3.2 concurrent
 * action-table update.
 */
class BusWatcher
{
  public:
    virtual ~BusWatcher() = default;

    /** Decide and take local action (e.g. queue an interrupt word). */
    virtual WatchVerdict observe(const BusTransaction &tx) = 0;

    /** Action-table side-effect update for the issuing processor. */
    virtual void sideEffectUpdate(const BusTransaction &tx) = 0;
};

/** Outcome handed to the requester's completion callback. */
struct TxResult
{
    bool aborted = false;
    /** Time the transaction spent queued waiting for the bus. */
    Tick queueDelay = 0;
    /** Bus occupancy of this transaction. */
    Tick busTime = 0;
};

/** The shared bus. */
class VmeBus
{
  public:
    using Completion = std::function<void(const TxResult &)>;

    VmeBus(EventQueue &events, PhysMem &memory,
           const BusTiming &timing = {});

    /**
     * Register @p watcher as the bus monitor of master @p id. Masters
     * without watchers (DMA devices) simply never get side-effect
     * updates.
     */
    void attachWatcher(std::uint32_t id, BusWatcher &watcher);

    /**
     * Queue a transaction. The completion callback fires when the
     * transaction leaves the bus (successfully or aborted). FIFO
     * arbitration.
     */
    void request(const BusTransaction &tx, Completion done);

    /** True if a transaction currently occupies the bus. */
    bool busy() const { return busy_; }

    const BusTiming &timing() const { return timing_; }

    /** Event queue the bus schedules on (for components that share
     *  its timeline, e.g. a stalled block copier). */
    EventQueue &eventQueue() { return events_; }

    /**
     * Attach (or detach, with nullptr) a fault-injection hook. With no
     * hook attached the bus behaves exactly as before — the hook test
     * is a single untaken branch per transaction.
     */
    void setFaultHooks(FaultHooks *hooks) { hooks_ = hooks; }

    /**
     * Attach (or detach, with nullptr) an event tracer; every
     * completed transaction is recorded as a BusTx span on @p track.
     * Like the fault hooks, a null tracer costs one untaken branch
     * per transaction, and a non-null tracer only observes — the
     * simulated timeline is unchanged either way.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        traceTrack_ = track;
    }

    /**
     * Observer called after every transaction completes — after data
     * movement and side-effect table updates, before the requester's
     * completion callback. Observers run in attachment order; the
     * coherence checker and the recovery failure detector each attach
     * one.
     */
    using TxObserver =
        std::function<void(const BusTransaction &, const TxResult &)>;
    void addTxObserver(TxObserver observer)
    {
        txObservers_.push_back(std::move(observer));
    }

    // --- statistics ---
    const Counter &transactions() const { return transactions_; }
    const Counter &aborts() const { return aborts_; }
    /** Occupancy of *completed* transactions; the in-flight one is
     *  charged when it leaves the bus. */
    Tick busyTicks() const { return busyTicks_; }
    /**
     * Bus utilization over [0, now]. The transaction currently on the
     * bus (if any) contributes only its already-elapsed share, so the
     * value is correct — and never above 1.0 — at any sampling point,
     * not just at quiescence.
     */
    double utilization() const;
    /**
     * *Completed* (non-aborted) transactions of a given type. An
     * aborted-then-retried transaction therefore counts exactly once
     * here when it finally succeeds; the aborted attempts show up only
     * in abortsOf(). (Counting aborted grants here used to double-count
     * every retried transaction during recovery storms.)
     */
    const Counter &countOf(TxType type) const;
    /** Aborted transactions of a given type. */
    const Counter &abortsOf(TxType type) const;
    /** Aborts forced by the fault-injection hook (subset of aborts). */
    const Counter &injectedAborts() const { return injectedAborts_; }
    /** Distribution of arbitration queueing delays (us buckets). */
    const Histogram &queueDelays() const { return queueDelays_; }
    void registerStats(StatGroup &group) const;

  private:
    struct Pending
    {
        BusTransaction tx;
        Completion done;
        Tick queuedAt;
    };

    void grant();
    void complete(Pending pending, bool aborted, Tick queue_delay,
                  Tick bus_time);

    EventQueue &events_;
    PhysMem &mem_;
    BusTiming timing_;
    std::vector<std::pair<std::uint32_t, BusWatcher *>> watchers_;
    std::deque<Pending> queue_;
    bool busy_ = false;
    FaultHooks *hooks_ = nullptr;
    std::vector<TxObserver> txObservers_;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;

    Counter transactions_;
    Counter aborts_;
    Counter injectedAborts_;
    Counter typeCounts_[kTxTypes];
    Counter typeAborts_[kTxTypes];
    /** Queue delay in microseconds, 1 us buckets up to 64 us. */
    Histogram queueDelays_{64, 1.0};
    Tick busyTicks_ = 0;
    /** Issue tick of the transaction on the bus (valid while busy_). */
    Tick txStartTick_ = 0;
    /** Occupancy of the transaction on the bus (valid while busy_). */
    Tick txBusTime_ = 0;
};

} // namespace vmp::mem

#endif // VMP_MEM_VME_BUS_HH
