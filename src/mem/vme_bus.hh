/**
 * @file
 * The shared VMEbus model: single-master-at-a-time arbitration under a
 * selectable discipline (plain FIFO, VME-style static priority levels,
 * or round-robin), block transfers at the paper's sequential-access
 * timing (300 ns first 32-bit word, 100 ns per subsequent word,
 * ~40 MB/s), a 150 ns consistency-check/action-table-update interval
 * overlapped with the transfer, and abort semantics (an aborted
 * transaction terminates at the end of the current memory reference and
 * moves no architected data — write-back is the only transaction that
 * modifies main memory).
 *
 * Bus monitors attach as BusWatcher instances; every watcher — including
 * the requester's own, which is what makes the alias "competing against
 * itself" trick of Section 3.3 work — observes every consistency-related
 * transaction and may interrupt its processor and/or abort the
 * transaction.
 */

#ifndef VMP_MEM_VME_BUS_HH
#define VMP_MEM_VME_BUS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "mem/bus_types.hh"
#include "mem/fault_hooks.hh"
#include "mem/phys_mem.hh"
#include "obs/event_tracer.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::mem
{

/**
 * Bus arbitration discipline. The VMEbus spec offers both a
 * prioritized scheme (four bus-request lines BR0-BR3, daisy-chained
 * within a level) and fairness options; the comparison of service
 * disciplines for a shared-bus multiprocessor with private caches is
 * the subject of arXiv 1004.3560.
 */
enum class Arbitration : std::uint8_t
{
    /** First-come first-served over all masters (seed behavior). */
    Fifo,
    /**
     * VME-style static priority: each master is assigned a bus-request
     * level; a higher level always wins arbitration, and requests on
     * the same level are served in arrival (daisy-chain) order.
     * Arbitration is non-preemptive — the transaction on the bus always
     * completes.
     */
    Priority,
    /**
     * Round-robin: the arbiter grants the requesting master that
     * follows the previous holder in cyclic master-id order, so no
     * master can capture the bus while others are waiting.
     */
    RoundRobin,
};

const char *arbitrationName(Arbitration discipline);
/** Parse "fifo" / "priority" / "rr" (or "round-robin"). */
Arbitration arbitrationFromName(const std::string &name);

/** Arbitration configuration of one bus. */
struct ArbitrationConfig
{
    Arbitration discipline = Arbitration::Fifo;
    /**
     * Number of bus-request levels (Priority only; VME has four,
     * BR0-BR3). A master's default level is id % priorityLevels with
     * *higher* numeric level winning, like BR3 > BR0; override with
     * VmeBus::setMasterLevel.
     */
    unsigned priorityLevels = 4;

    void check() const;
};

/** Timing parameters of bus and memory (Sections 2, 4 and 5.1). */
struct BusTiming
{
    /** First sequential access to a memory board. */
    Tick firstWordNs = 300;
    /** Each subsequent sequential 32-bit word. */
    Tick wordNs = 100;
    /** Consistency-check / action-table-update interval. */
    Tick checkNs = 150;
    /**
     * Bus occupancy of non-block transactions (assert-ownership,
     * notify, write-action-table): one address/check cycle.
     */
    Tick shortTxNs = 450;
    /** Occupancy of an aborted transaction (terminates at the end of
     *  the current memory reference). */
    Tick abortNs = 450;

    /** Block transfer occupancy for @p bytes (32-bit strobes). */
    Tick blockNs(std::uint32_t bytes) const;
    /** Total bus occupancy of a (successful) transaction. */
    Tick occupancy(TxType type, std::uint32_t bytes) const;
};

/**
 * Interface bus monitors implement to watch the bus. observe() is called
 * for every consistency-related transaction (on every watcher);
 * sideEffectUpdate() is called only on the requester's watcher when its
 * transaction completes unaborted, carrying the Section 3.2 concurrent
 * action-table update.
 */
class BusWatcher
{
  public:
    virtual ~BusWatcher() = default;

    /** Decide and take local action (e.g. queue an interrupt word). */
    virtual WatchVerdict observe(const BusTransaction &tx) = 0;

    /** Action-table side-effect update for the issuing processor. */
    virtual void sideEffectUpdate(const BusTransaction &tx) = 0;
};

/** Outcome handed to the requester's completion callback. */
struct TxResult
{
    bool aborted = false;
    /** Time the transaction spent queued waiting for the bus. */
    Tick queueDelay = 0;
    /** Bus occupancy of this transaction. */
    Tick busTime = 0;
};

/** The shared bus. */
class VmeBus
{
  public:
    using Completion = std::function<void(const TxResult &)>;

    VmeBus(EventQueue &events, PhysMem &memory,
           const BusTiming &timing = {},
           const ArbitrationConfig &arbitration = {});

    /**
     * Register @p watcher as the bus monitor of master @p id. Masters
     * without watchers (DMA devices) simply never get side-effect
     * updates.
     */
    void attachWatcher(std::uint32_t id, BusWatcher &watcher);

    /**
     * Queue a transaction. The completion callback fires when the
     * transaction leaves the bus (successfully or aborted); the
     * configured arbitration discipline picks among queued requests
     * each time the bus frees.
     */
    void request(const BusTransaction &tx, Completion done);

    /** True if a transaction currently occupies the bus. */
    bool busy() const { return busy_; }

    const BusTiming &timing() const { return timing_; }
    const ArbitrationConfig &arbitration() const { return arb_; }

    /**
     * Override the bus-request level of master @p id (Priority
     * discipline; higher level wins). Without an override a master
     * requests on level id % priorityLevels.
     */
    void setMasterLevel(std::uint32_t id, unsigned level);
    /** Effective bus-request level of master @p id. */
    unsigned levelOf(std::uint32_t id) const;

    /**
     * Fence master @p id off the bus (partial-failure quarantine): its
     * requests are dropped at arbitration — never granted, never
     * observed by any monitor, and their completion callbacks never
     * fire, so a babbling or wedged board's retry loops starve out
     * deterministically instead of saturating the bus. Distinct from
     * monitor masking, which silences a board's *watcher*; the fence
     * silences its *requests*. Unfence before a cold rejoin.
     */
    void setMasterFenced(std::uint32_t id, bool fenced);
    /** True while master @p id is fenced off the bus. */
    bool isMasterFenced(std::uint32_t id) const;
    /** Requests dropped at the fence. */
    const Counter &fencedDrops() const { return fencedDrops_; }

    /** Event queue the bus schedules on (for components that share
     *  its timeline, e.g. a stalled block copier). */
    EventQueue &eventQueue() { return events_; }

    /**
     * Attach (or detach, with nullptr) a fault-injection hook. With no
     * hook attached the bus behaves exactly as before — the hook test
     * is a single untaken branch per transaction.
     */
    void setFaultHooks(FaultHooks *hooks) { hooks_ = hooks; }

    /**
     * Attach (or detach, with nullptr) an event tracer; every
     * completed transaction is recorded as a BusTx span on @p track.
     * Like the fault hooks, a null tracer costs one untaken branch
     * per transaction, and a non-null tracer only observes — the
     * simulated timeline is unchanged either way.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        traceTrack_ = track;
    }

    /**
     * Observer called after every transaction completes — after data
     * movement and side-effect table updates, before the requester's
     * completion callback. Observers run in attachment order; the
     * coherence checker and the recovery failure detector each attach
     * one.
     */
    using TxObserver =
        std::function<void(const BusTransaction &, const TxResult &)>;
    void addTxObserver(TxObserver observer)
    {
        txObservers_.push_back(std::move(observer));
    }

    // --- statistics ---
    const Counter &transactions() const { return transactions_; }
    const Counter &aborts() const { return aborts_; }
    /** Occupancy of *completed* transactions; the in-flight one is
     *  charged when it leaves the bus. */
    Tick busyTicks() const { return busyTicks_; }
    /**
     * Bus utilization over [0, now]. The transaction currently on the
     * bus (if any) contributes only its already-elapsed share, so the
     * value is correct — and never above 1.0 — at any sampling point,
     * not just at quiescence.
     */
    double utilization() const;
    /**
     * *Completed* (non-aborted) transactions of a given type. An
     * aborted-then-retried transaction therefore counts exactly once
     * here when it finally succeeds; the aborted attempts show up only
     * in abortsOf(). (Counting aborted grants here used to double-count
     * every retried transaction during recovery storms.)
     */
    const Counter &countOf(TxType type) const;
    /** Aborted transactions of a given type. */
    const Counter &abortsOf(TxType type) const;
    /** Aborts forced by the fault-injection hook (subset of aborts). */
    const Counter &injectedAborts() const { return injectedAborts_; }
    /**
     * Distribution of arbitration queueing delays (us buckets) of
     * *completed* grants. An aborted-then-retried transaction samples
     * once per grant that completes — consistent with the
     * completed-only per-TxType counters — while the waits of its
     * aborted attempts land in abortedQueueDelays(). (Sampling every
     * grant here used to skew the distribution during recovery storms:
     * each retry chain contributed one sample per attempt.)
     */
    const Histogram &queueDelays() const { return queueDelays_; }
    /** Queueing delays of grants that ended in an abort. */
    const Histogram &abortedQueueDelays() const
    {
        return abortedQueueDelays_;
    }
    /**
     * Queueing-delay distribution of completed grants issued on
     * bus-request level @p level (Priority discipline only — empty
     * under FIFO and round-robin).
     */
    const Histogram &queueDelaysOfLevel(unsigned level) const;
    /** Completed grants per bus-request level (Priority only). */
    const Counter &grantsOfLevel(unsigned level) const;
    void registerStats(StatGroup &group) const;

  private:
    struct Pending
    {
        BusTransaction tx;
        Completion done;
        Tick queuedAt;
    };

    void grant();
    /** Pick the next queued request under the configured discipline. */
    std::deque<Pending>::iterator selectNext();
    void complete(Pending pending, bool aborted, Tick queue_delay,
                  Tick bus_time);

    EventQueue &events_;
    PhysMem &mem_;
    BusTiming timing_;
    ArbitrationConfig arb_;
    std::vector<std::pair<std::uint32_t, BusWatcher *>> watchers_;
    /** Per-master level overrides (Priority discipline). */
    std::vector<std::pair<std::uint32_t, unsigned>> levelOverrides_;
    std::deque<Pending> queue_;
    /** Masters currently fenced off the bus (normally empty). */
    std::vector<std::uint32_t> fenced_;
    bool busy_ = false;
    /** Master granted most recently (round-robin rotation point). */
    std::uint32_t lastMaster_ = 0;
    FaultHooks *hooks_ = nullptr;
    std::vector<TxObserver> txObservers_;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;

    Counter transactions_;
    Counter aborts_;
    Counter injectedAborts_;
    Counter fencedDrops_;
    Counter typeCounts_[kTxTypes];
    Counter typeAborts_[kTxTypes];
    /** Queue delay in microseconds, 1 us buckets up to 64 us. */
    Histogram queueDelays_{64, 1.0};
    Histogram abortedQueueDelays_{64, 1.0};
    /** Per-bus-request-level delays/grants (Priority only; one slot
     *  per configured level). */
    std::vector<Histogram> levelDelays_;
    std::vector<Counter> levelGrants_;
    Tick busyTicks_ = 0;
    /** Issue tick of the transaction on the bus (valid while busy_). */
    Tick txStartTick_ = 0;
    /** Occupancy of the transaction on the bus (valid while busy_). */
    Tick txBusTime_ = 0;
};

} // namespace vmp::mem

#endif // VMP_MEM_VME_BUS_HH
