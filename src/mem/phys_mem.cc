#include "mem/phys_mem.hh"

#include <cstring>

#include "sim/logging.hh"

namespace vmp::mem
{

PhysMem::PhysMem(std::uint64_t bytes, std::uint32_t page_bytes)
    : pageBytes_(page_bytes)
{
    if (!isPowerOf2(page_bytes))
        fatal("physical memory page size must be a power of two");
    if (bytes == 0 || bytes % page_bytes != 0)
        fatal("physical memory size must be a positive multiple of the "
              "page size");
    data_.assign(bytes, 0);
}

std::uint64_t
PhysMem::frameOf(Addr paddr) const
{
    checkRange(paddr, 1);
    return paddr / pageBytes_;
}

Addr
PhysMem::frameBase(std::uint64_t frame) const
{
    if (frame >= frames())
        panic("frame ", frame, " out of range (", frames(), " frames)");
    return frame * pageBytes_;
}

void
PhysMem::checkRange(Addr paddr, std::uint32_t len) const
{
    if (paddr + len > data_.size() || paddr + len < paddr)
        panic("physical access [0x", std::hex, paddr, ", +", std::dec,
              len, ") beyond memory of ", data_.size(), " bytes");
}

void
PhysMem::readBlock(Addr paddr, void *dst, std::uint32_t len) const
{
    checkRange(paddr, len);
    std::memcpy(dst, data_.data() + paddr, len);
}

void
PhysMem::writeBlock(Addr paddr, const void *src, std::uint32_t len)
{
    checkRange(paddr, len);
    std::memcpy(data_.data() + paddr, src, len);
    ++writes_;
}

void
PhysMem::initBlock(Addr paddr, const void *src, std::uint32_t len)
{
    checkRange(paddr, len);
    std::memcpy(data_.data() + paddr, src, len);
    ++initWrites_;
}

void
PhysMem::zeroInit(Addr paddr, std::uint32_t len)
{
    checkRange(paddr, len);
    std::memset(data_.data() + paddr, 0, len);
    ++initWrites_;
}

std::uint32_t
PhysMem::readWord(Addr paddr) const
{
    std::uint32_t v = 0;
    readBlock(paddr, &v, sizeof(v));
    return v;
}

void
PhysMem::writeWord(Addr paddr, std::uint32_t value)
{
    writeBlock(paddr, &value, sizeof(value));
}

} // namespace vmp::mem
