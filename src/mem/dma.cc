#include "mem/dma.hh"

#include <memory>

#include "sim/logging.hh"

namespace vmp::mem
{

DmaDevice::DmaDevice(std::uint32_t master_id, VmeBus &bus)
    : masterId_(master_id), bus_(bus)
{
}

void
DmaDevice::write(Addr paddr, std::vector<std::uint8_t> data, Done done)
{
    if (data.empty())
        panic("DMA write of zero bytes");
    auto buffer =
        std::make_shared<std::vector<std::uint8_t>>(std::move(data));
    BusTransaction tx;
    tx.type = TxType::DmaWrite;
    tx.requester = masterId_;
    tx.paddr = paddr;
    tx.bytes = static_cast<std::uint32_t>(buffer->size());
    tx.data = buffer->data();
    bytesMoved_ += buffer->size();
    ++transfers_;
    bus_.request(tx, [buffer, done = std::move(done)](const TxResult &r) {
        if (r.aborted)
            panic("DMA transactions are never aborted");
        if (done)
            done();
    });
}

void
DmaDevice::read(Addr paddr, std::uint32_t bytes,
                std::function<void(std::vector<std::uint8_t>)> done)
{
    if (bytes == 0)
        panic("DMA read of zero bytes");
    auto buffer =
        std::make_shared<std::vector<std::uint8_t>>(bytes, 0);
    BusTransaction tx;
    tx.type = TxType::DmaRead;
    tx.requester = masterId_;
    tx.paddr = paddr;
    tx.bytes = bytes;
    tx.data = buffer->data();
    bytesMoved_ += bytes;
    ++transfers_;
    bus_.request(tx,
                 [buffer, done = std::move(done)](const TxResult &r) {
                     if (r.aborted)
                         panic("DMA transactions are never aborted");
                     if (done)
                         done(std::move(*buffer));
                 });
}

} // namespace vmp::mem
