#include "mem/block_copier.hh"

#include "sim/logging.hh"

namespace vmp::mem
{

BlockCopier::BlockCopier(std::uint32_t master_id, VmeBus &bus)
    : masterId_(master_id), bus_(bus)
{
}

void
BlockCopier::start(const BusTransaction &tx, Done done)
{
    if (busy_)
        panic("block copier of master ", masterId_,
              " started while busy");
    busy_ = true;
    ++copies_;
    startedAt_ = bus_.eventQueue().now();
    auto issue = [this, tx, done = std::move(done)]() mutable {
        bus_.request(tx,
                     [this, tx,
                      done = std::move(done)](const TxResult &res) {
                         busy_ = false;
                         if (res.aborted)
                             ++aborted_;
                         if (tracer_ != nullptr) {
                             const Tick now = bus_.eventQueue().now();
                             obs::TraceEvent event;
                             event.kind = obs::EventKind::Copy;
                             event.at = startedAt_;
                             event.addr = tx.paddr;
                             event.arg0 = now - startedAt_;
                             event.arg1 = res.busTime;
                             event.master = masterId_;
                             event.track = traceTrack_;
                             event.aux =
                                 static_cast<std::uint8_t>(tx.type) |
                                 (res.aborted ? 0x80u : 0u);
                             tracer_->record(event);
                         }
                         if (done)
                             done(res);
                     });
    };
    // Fault injection: stall the engine before the request hits the
    // bus. busy_ is already set, so the CPU blocks exactly as it would
    // on a slow copier.
    if (hooks_ != nullptr) {
        const Tick stall = hooks_->injectCopierStall(tx);
        if (stall > 0) {
            ++stalled_;
            bus_.eventQueue().scheduleIn(stall, std::move(issue),
                                         "copier-stall");
            return;
        }
    }
    issue();
}

void
BlockCopier::readPage(Addr paddr, std::uint8_t *buffer,
                      std::uint32_t bytes, bool exclusive, Done done)
{
    BusTransaction tx;
    tx.type = exclusive ? TxType::ReadPrivate : TxType::ReadShared;
    tx.requester = masterId_;
    tx.paddr = paddr;
    tx.bytes = bytes;
    tx.data = buffer;
    tx.newEntry = exclusive ? ActionEntry::Protect : ActionEntry::Shared;
    tx.updatesTable = true;
    start(tx, std::move(done));
}

void
BlockCopier::writeBackPage(Addr paddr, const std::uint8_t *buffer,
                           std::uint32_t bytes, ActionEntry after,
                           Done done)
{
    BusTransaction tx;
    tx.type = TxType::WriteBack;
    tx.requester = masterId_;
    tx.paddr = paddr;
    tx.bytes = bytes;
    // The bus only reads from this buffer for write-back transactions.
    tx.data = const_cast<std::uint8_t *>(buffer);
    tx.newEntry = after;
    tx.updatesTable = true;
    start(tx, std::move(done));
}

} // namespace vmp::mem
