/**
 * @file
 * Main (global) memory: a flat byte array viewed as a sequence of cache
 * page frames. The static-column access timing of the paper's memory
 * boards lives in the bus model; this class is the storage plus frame
 * arithmetic and a write-back audit counter used to check the paper's
 * invariant that write-back is the only transaction modifying memory.
 */

#ifndef VMP_MEM_PHYS_MEM_HH
#define VMP_MEM_PHYS_MEM_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::mem
{

/** Physical memory storage. */
class PhysMem
{
  public:
    /**
     * @param bytes total physical memory (prototype maximum: 8 MiB)
     * @param page_bytes cache page size, for frame arithmetic
     */
    PhysMem(std::uint64_t bytes, std::uint32_t page_bytes);

    std::uint64_t size() const { return data_.size(); }
    std::uint32_t pageBytes() const { return pageBytes_; }
    std::uint64_t frames() const { return size() / pageBytes_; }

    /** Frame number containing @p paddr. */
    std::uint64_t frameOf(Addr paddr) const;
    /** Base address of frame @p frame. */
    Addr frameBase(std::uint64_t frame) const;

    /** Raw block access (bus-side). Bounds-checked. */
    void readBlock(Addr paddr, void *dst, std::uint32_t len) const;
    void writeBlock(Addr paddr, const void *src, std::uint32_t len);

    /** Word helpers used by tests and the scripted-program CPUs. */
    std::uint32_t readWord(Addr paddr) const;
    void writeWord(Addr paddr, std::uint32_t value);

    /**
     * Initialization write that is not an architected bus write: used
     * for paging-disk transfers and OS page zeroing, which in the real
     * machine are DMA operations bracketed by the Section 3.3 lock +
     * assert-ownership protocol. Counted separately so the "only
     * write-backs modify memory" invariant stays checkable.
     */
    void initBlock(Addr paddr, const void *src, std::uint32_t len);
    /** Zero-fill variant of initBlock. */
    void zeroInit(Addr paddr, std::uint32_t len);

    const Counter &writes() const { return writes_; }
    const Counter &initWrites() const { return initWrites_; }

  private:
    void checkRange(Addr paddr, std::uint32_t len) const;

    std::vector<std::uint8_t> data_;
    std::uint32_t pageBytes_;
    Counter writes_;
    Counter initWrites_;
};

} // namespace vmp::mem

#endif // VMP_MEM_PHYS_MEM_HH
