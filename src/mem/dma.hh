/**
 * @file
 * VME-standard DMA device model (Section 3.3). DMA transfers are
 * normal (non-consistency) block transactions that no bus monitor ever
 * aborts; correctness comes from the software bracket around them —
 * the OS takes a lock on the region, assert-ownership flushes every
 * cached copy, the monitors are set to protect the frames, and only
 * then does the device stream data.
 */

#ifndef VMP_MEM_DMA_HH
#define VMP_MEM_DMA_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/vme_bus.hh"
#include "sim/stats.hh"

namespace vmp::mem
{

/** One DMA-capable device (disk controller, Ethernet, framebuffer). */
class DmaDevice
{
  public:
    using Done = std::function<void()>;

    /**
     * @param master_id bus master id; must not collide with any CPU
     */
    DmaDevice(std::uint32_t master_id, VmeBus &bus);

    /** Stream @p data into memory at @p paddr (device -> memory). */
    void write(Addr paddr, std::vector<std::uint8_t> data, Done done);

    /** Read @p bytes from memory at @p paddr (memory -> device);
     *  the data is handed to @p done. */
    void read(Addr paddr, std::uint32_t bytes,
              std::function<void(std::vector<std::uint8_t>)> done);

    const Counter &transfers() const { return transfers_; }
    std::uint64_t bytesMoved() const { return bytesMoved_; }

  private:
    std::uint32_t masterId_;
    VmeBus &bus_;
    Counter transfers_;
    std::uint64_t bytesMoved_ = 0;
};

} // namespace vmp::mem

#endif // VMP_MEM_DMA_HH
