#include "mem/vme_bus.hh"

#include <algorithm>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::mem
{

namespace
{

/**
 * Bounds-checked index into the per-type counter arrays. TxType is a
 * plain enum over kTxTypes values; an out-of-range value (e.g. from a
 * corrupted or miscast transaction) used to silently index past the
 * fixed arrays and corrupt adjacent counters. Panic instead.
 */
std::size_t
txIndex(TxType type)
{
    const auto index = static_cast<std::size_t>(type);
    if (index >= kTxTypes)
        panic("out-of-range TxType ", index,
              " indexing per-type bus counters");
    return index;
}

} // namespace

const char *
txTypeName(TxType type)
{
    switch (type) {
      case TxType::ReadShared: return "read-shared";
      case TxType::ReadPrivate: return "read-private";
      case TxType::AssertOwnership: return "assert-ownership";
      case TxType::WriteBack: return "write-back";
      case TxType::Notify: return "notify";
      case TxType::WriteActionTable: return "write-action-table";
      case TxType::DmaRead: return "dma-read";
      case TxType::DmaWrite: return "dma-write";
      case TxType::Reclaim: return "reclaim";
      case TxType::BoardMask: return "board-mask";
    }
    return "?";
}

const char *
actionEntryName(ActionEntry entry)
{
    switch (entry) {
      case ActionEntry::Ignore: return "00-ignore";
      case ActionEntry::Shared: return "01-shared";
      case ActionEntry::Protect: return "10-protect";
      case ActionEntry::Notify: return "11-notify";
    }
    return "?";
}

std::string
BusTransaction::toString() const
{
    std::ostringstream os;
    os << txTypeName(type) << " req=" << requester << " pa=0x"
       << std::hex << paddr << std::dec << " len=" << bytes;
    return os.str();
}

Tick
BusTiming::blockNs(std::uint32_t bytes) const
{
    if (bytes == 0)
        return 0;
    const std::uint32_t words = (bytes + 3) / 4;
    return firstWordNs + static_cast<Tick>(words - 1) * wordNs;
}

Tick
BusTiming::occupancy(TxType type, std::uint32_t bytes) const
{
    // The 150 ns check/update interval is overlapped with the block
    // transfer (Figure 2), so block transactions cost only the
    // transfer; short transactions cost one address/check cycle.
    return movesData(type) ? blockNs(bytes) : shortTxNs;
}

VmeBus::VmeBus(EventQueue &events, PhysMem &memory,
               const BusTiming &timing)
    : events_(events), mem_(memory), timing_(timing)
{
}

void
VmeBus::attachWatcher(std::uint32_t id, BusWatcher &watcher)
{
    for (const auto &[existing, w] : watchers_) {
        if (existing == id)
            fatal("bus watcher for master ", id, " already attached");
    }
    watchers_.emplace_back(id, &watcher);
}

void
VmeBus::request(const BusTransaction &tx, Completion done)
{
    if (movesData(tx.type)) {
        if (tx.bytes == 0)
            panic("block transaction with zero length: ", tx.toString());
        if (tx.data == nullptr)
            panic("block transaction without buffer: ", tx.toString());
    }
    queue_.push_back(Pending{tx, std::move(done), events_.now()});
    if (!busy_)
        grant();
}

void
VmeBus::grant()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    Pending pending = std::move(queue_.front());
    queue_.pop_front();
    const BusTransaction &tx = pending.tx;
    const Tick queue_delay = events_.now() - pending.queuedAt;

    // Consistency check: every attached monitor observes the
    // transaction (including the requester's own).
    bool aborted = false;
    if (isConsistencyRelated(tx.type)) {
        for (const auto &[id, watcher] : watchers_) {
            const WatchVerdict verdict = watcher->observe(tx);
            if (verdict == WatchVerdict::AbortAndInterrupt)
                aborted = true;
        }
    }

    // Fault injection (null hook = no cost): a spurious abort looks to
    // software exactly like a monitor-issued abort; a truncated block
    // transfer terminates early as an abort but still occupies the bus
    // for part of the block time.
    Tick bus_time_override = 0;
    if (hooks_ != nullptr && !aborted && isConsistencyRelated(tx.type)) {
        if (hooks_->injectBusAbort(tx)) {
            aborted = true;
            ++injectedAborts_;
            VMP_DTRACE(debug::Fault, events_.now(), "spurious abort on ",
                       tx.toString());
        } else if (movesData(tx.type) && hooks_->injectTruncate(tx)) {
            aborted = true;
            ++injectedAborts_;
            const Tick block = timing_.blockNs(tx.bytes);
            bus_time_override = block > timing_.abortNs
                ? timing_.abortNs + (block - timing_.abortNs) / 2
                : timing_.abortNs;
            VMP_DTRACE(debug::Fault, events_.now(),
                       "truncated transfer ", tx.toString(),
                       " busTime=", bus_time_override);
        }
    }

    const Tick bus_time = bus_time_override != 0 ? bus_time_override
        : aborted ? timing_.abortNs
                  : timing_.occupancy(tx.type, tx.bytes);
    VMP_DTRACE(debug::Bus, events_.now(), tx.toString(),
               aborted ? " ABORTED" : " granted", " busTime=",
               bus_time);

    ++transactions_;
    queueDelays_.sample(toUsec(queue_delay));
    if (aborted) {
        ++aborts_;
        ++typeAborts_[txIndex(tx.type)];
    } else {
        // Per-type counts are *completed* transactions only. An
        // aborted-then-retried transaction would otherwise be counted
        // once per attempt, double-counting during recovery storms;
        // aborted grants are visible via aborts()/abortsOf() and still
        // contribute to transactions_ and bus occupancy.
        ++typeCounts_[txIndex(tx.type)];
    }
    // Busy time is charged at *completion* (see complete()); while the
    // transaction is in flight utilization() pro-rates it from these
    // two fields. Charging the full occupancy at issue time used to
    // let mid-run utilization samples exceed 1.0.
    txStartTick_ = events_.now();
    txBusTime_ = bus_time;

    events_.scheduleIn(bus_time,
                       [this, p = std::move(pending), aborted,
                        queue_delay, bus_time]() mutable {
                           complete(std::move(p), aborted, queue_delay,
                                    bus_time);
                       },
                       "bus-complete");
}

void
VmeBus::complete(Pending pending, bool aborted, Tick queue_delay,
                 Tick bus_time)
{
    const BusTransaction &tx = pending.tx;
    if (!aborted) {
        // Architected data movement.
        switch (tx.type) {
          case TxType::ReadShared:
          case TxType::ReadPrivate:
          case TxType::DmaRead:
            mem_.readBlock(tx.paddr, tx.data, tx.bytes);
            break;
          case TxType::WriteBack:
          case TxType::DmaWrite:
            if (tx.rmw && tx.oldData)
                mem_.readBlock(tx.paddr, tx.oldData, tx.bytes);
            mem_.writeBlock(tx.paddr, tx.data, tx.bytes);
            break;
          default:
            break;
        }
        // Concurrent action-table update on the issuing processor's
        // monitor (only when not aborted, Section 3.2).
        if (tx.updatesTable) {
            for (const auto &[id, watcher] : watchers_) {
                if (id == tx.requester)
                    watcher->sideEffectUpdate(tx);
            }
        }
    }

    TxResult result;
    result.aborted = aborted;
    result.queueDelay = queue_delay;
    result.busTime = bus_time;

    // Invariant checking / failure detection: observers see the
    // transaction after data movement and table side effects, before
    // anyone reacts to it.
    for (const auto &observer : txObservers_)
        observer(tx, result);

    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::BusTx;
        event.at = events_.now() - bus_time;
        event.addr = tx.paddr;
        event.arg0 = bus_time;
        event.arg1 = queue_delay;
        event.master = tx.requester;
        event.track = traceTrack_;
        event.aux = static_cast<std::uint8_t>(txIndex(tx.type)) |
                    (aborted ? 0x80u : 0u);
        tracer_->record(event);
    }

    // The transaction has now actually occupied the bus for bus_time
    // ticks; account it. (grant() below either starts the next
    // transaction — resetting the in-flight fields at the current
    // tick — or clears busy_.)
    busyTicks_ += bus_time;

    // Grant the next queued transaction before running the completion
    // so a retry issued from the callback queues behind existing work.
    Completion done = std::move(pending.done);
    grant();
    if (done)
        done(result);
}

double
VmeBus::utilization() const
{
    const Tick now = events_.now();
    if (now == 0)
        return 0.0;
    // Completed occupancy plus the elapsed share of the transaction
    // currently holding the bus, so a sample taken mid-transfer never
    // counts bus time that has not yet been spent (and can therefore
    // never exceed 1.0).
    Tick busy = busyTicks_;
    if (busy_)
        busy += std::min(now - txStartTick_, txBusTime_);
    return static_cast<double>(busy) / static_cast<double>(now);
}

const Counter &
VmeBus::countOf(TxType type) const
{
    return typeCounts_[txIndex(type)];
}

const Counter &
VmeBus::abortsOf(TxType type) const
{
    return typeAborts_[txIndex(type)];
}

void
VmeBus::registerStats(StatGroup &group) const
{
    group.addCounter("transactions", "bus transactions granted",
                     transactions_);
    group.addCounter("aborts", "transactions aborted by a monitor",
                     aborts_);
    group.addCounter("injected_aborts",
                     "aborts forced by fault injection", injectedAborts_);
    group.addCounter("read_shared", "read-shared transactions",
                     countOf(TxType::ReadShared));
    group.addCounter("read_private", "read-private transactions",
                     countOf(TxType::ReadPrivate));
    group.addCounter("assert_ownership", "assert-ownership transactions",
                     countOf(TxType::AssertOwnership));
    group.addCounter("write_back", "write-back transactions",
                     countOf(TxType::WriteBack));
    group.addCounter("notify", "notify transactions",
                     countOf(TxType::Notify));
    group.addCounter("reclaim", "recovery reclaim transactions",
                     countOf(TxType::Reclaim));
    group.addCounter("board_mask", "recovery board-mask transactions",
                     countOf(TxType::BoardMask));
    group.addHistogram("queue_delay_us",
                       "arbitration queueing delay distribution (us)",
                       queueDelays_);
}

} // namespace vmp::mem
