#include "mem/vme_bus.hh"

#include <algorithm>
#include <iterator>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::mem
{

namespace
{

/**
 * Bounds-checked index into the per-type counter arrays. TxType is a
 * plain enum over kTxTypes values; an out-of-range value (e.g. from a
 * corrupted or miscast transaction) used to silently index past the
 * fixed arrays and corrupt adjacent counters. Panic instead.
 */
std::size_t
txIndex(TxType type)
{
    const auto index = static_cast<std::size_t>(type);
    if (index >= kTxTypes)
        panic("out-of-range TxType ", index,
              " indexing per-type bus counters");
    return index;
}

} // namespace

const char *
arbitrationName(Arbitration discipline)
{
    switch (discipline) {
      case Arbitration::Fifo: return "fifo";
      case Arbitration::Priority: return "priority";
      case Arbitration::RoundRobin: return "round-robin";
    }
    return "?";
}

Arbitration
arbitrationFromName(const std::string &name)
{
    if (name == "fifo")
        return Arbitration::Fifo;
    if (name == "priority")
        return Arbitration::Priority;
    if (name == "rr" || name == "round-robin")
        return Arbitration::RoundRobin;
    fatal("unknown arbitration discipline '", name,
          "' (want fifo, priority, rr)");
}

void
ArbitrationConfig::check() const
{
    if (priorityLevels == 0 || priorityLevels > 8)
        fatal("arbitration: priority levels must be in [1, 8]");
}

const char *
txTypeName(TxType type)
{
    switch (type) {
      case TxType::ReadShared: return "read-shared";
      case TxType::ReadPrivate: return "read-private";
      case TxType::AssertOwnership: return "assert-ownership";
      case TxType::WriteBack: return "write-back";
      case TxType::Notify: return "notify";
      case TxType::WriteActionTable: return "write-action-table";
      case TxType::DmaRead: return "dma-read";
      case TxType::DmaWrite: return "dma-write";
      case TxType::Reclaim: return "reclaim";
      case TxType::BoardMask: return "board-mask";
    }
    return "?";
}

const char *
actionEntryName(ActionEntry entry)
{
    switch (entry) {
      case ActionEntry::Ignore: return "00-ignore";
      case ActionEntry::Shared: return "01-shared";
      case ActionEntry::Protect: return "10-protect";
      case ActionEntry::Notify: return "11-notify";
    }
    return "?";
}

std::string
BusTransaction::toString() const
{
    std::ostringstream os;
    os << txTypeName(type) << " req=" << requester << " pa=0x"
       << std::hex << paddr << std::dec << " len=" << bytes;
    return os.str();
}

Tick
BusTiming::blockNs(std::uint32_t bytes) const
{
    if (bytes == 0)
        return 0;
    const std::uint32_t words = (bytes + 3) / 4;
    return firstWordNs + static_cast<Tick>(words - 1) * wordNs;
}

Tick
BusTiming::occupancy(TxType type, std::uint32_t bytes) const
{
    // The 150 ns check/update interval is overlapped with the block
    // transfer (Figure 2), so block transactions cost only the
    // transfer; short transactions cost one address/check cycle.
    return movesData(type) ? blockNs(bytes) : shortTxNs;
}

VmeBus::VmeBus(EventQueue &events, PhysMem &memory,
               const BusTiming &timing,
               const ArbitrationConfig &arbitration)
    : events_(events), mem_(memory), timing_(timing), arb_(arbitration)
{
    arb_.check();
    if (arb_.discipline == Arbitration::Priority) {
        for (unsigned l = 0; l < arb_.priorityLevels; ++l) {
            levelDelays_.emplace_back(64, 1.0);
            levelGrants_.emplace_back();
        }
    }
}

void
VmeBus::setMasterLevel(std::uint32_t id, unsigned level)
{
    if (level >= arb_.priorityLevels)
        fatal("bus-request level ", level, " out of range (",
              arb_.priorityLevels, " levels configured)");
    for (auto &[existing, l] : levelOverrides_) {
        if (existing == id) {
            l = level;
            return;
        }
    }
    levelOverrides_.emplace_back(id, level);
}

unsigned
VmeBus::levelOf(std::uint32_t id) const
{
    for (const auto &[existing, level] : levelOverrides_) {
        if (existing == id)
            return level;
    }
    return id % arb_.priorityLevels;
}

std::deque<VmeBus::Pending>::iterator
VmeBus::selectNext()
{
    switch (arb_.discipline) {
      case Arbitration::Fifo:
        return queue_.begin();
      case Arbitration::Priority: {
        // Highest bus-request level wins; arrival order (the
        // daisy-chain) breaks ties, so strict > keeps the earliest.
        auto best = queue_.begin();
        for (auto it = std::next(best); it != queue_.end(); ++it) {
            if (levelOf(it->tx.requester) >
                levelOf(best->tx.requester))
                best = it;
        }
        return best;
      }
      case Arbitration::RoundRobin: {
        // Smallest cyclic distance from the previous holder wins;
        // among requests of the same master, arrival order.
        const auto distance = [this](std::uint32_t id) {
            return static_cast<std::uint32_t>(id - lastMaster_ - 1);
        };
        auto best = queue_.begin();
        for (auto it = std::next(best); it != queue_.end(); ++it) {
            if (distance(it->tx.requester) <
                distance(best->tx.requester))
                best = it;
        }
        return best;
      }
    }
    panic("unreachable arbitration discipline");
}

void
VmeBus::attachWatcher(std::uint32_t id, BusWatcher &watcher)
{
    for (const auto &[existing, w] : watchers_) {
        if (existing == id)
            fatal("bus watcher for master ", id, " already attached");
    }
    watchers_.emplace_back(id, &watcher);
}

void
VmeBus::request(const BusTransaction &tx, Completion done)
{
    if (movesData(tx.type)) {
        if (tx.bytes == 0)
            panic("block transaction with zero length: ", tx.toString());
        if (tx.data == nullptr)
            panic("block transaction without buffer: ", tx.toString());
    }
    // A fenced master's request bounces at the bus interface: no
    // grant, no occupancy, no monitor observation. It completes as
    // aborted after one short-transaction time so the requester's
    // retry loop stays paced and its timed wait eventually abandons
    // with a structured DeadOwnerError (a silent drop would strand
    // in-flight operations forever and the run would never converge).
    // The empty-set check keeps the healthy path at one untaken
    // branch.
    if (!fenced_.empty() && isMasterFenced(tx.requester)) {
        ++fencedDrops_;
        events_.scheduleIn(
            timing_.shortTxNs,
            [done = std::move(done)] {
                TxResult result;
                result.aborted = true;
                done(result);
            },
            "bus-fence-bounce");
        return;
    }
    queue_.push_back(Pending{tx, std::move(done), events_.now()});
    if (!busy_)
        grant();
}

void
VmeBus::setMasterFenced(std::uint32_t id, bool fenced)
{
    const auto it = std::find(fenced_.begin(), fenced_.end(), id);
    if (fenced && it == fenced_.end())
        fenced_.push_back(id);
    else if (!fenced && it != fenced_.end())
        fenced_.erase(it);
}

bool
VmeBus::isMasterFenced(std::uint32_t id) const
{
    return std::find(fenced_.begin(), fenced_.end(), id) !=
        fenced_.end();
}

void
VmeBus::grant()
{
    if (queue_.empty()) {
        busy_ = false;
        return;
    }
    busy_ = true;
    const auto next = selectNext();
    Pending pending = std::move(*next);
    queue_.erase(next);
    const BusTransaction &tx = pending.tx;
    lastMaster_ = tx.requester;
    const Tick queue_delay = events_.now() - pending.queuedAt;

    // Consistency check: every attached monitor observes the
    // transaction (including the requester's own).
    bool aborted = false;
    if (isConsistencyRelated(tx.type)) {
        for (const auto &[id, watcher] : watchers_) {
            const WatchVerdict verdict = watcher->observe(tx);
            if (verdict == WatchVerdict::AbortAndInterrupt)
                aborted = true;
        }
    }

    // Fault injection (null hook = no cost): a spurious abort looks to
    // software exactly like a monitor-issued abort; a truncated block
    // transfer terminates early as an abort but still occupies the bus
    // for part of the block time.
    Tick bus_time_override = 0;
    if (hooks_ != nullptr && !aborted && isConsistencyRelated(tx.type)) {
        if (hooks_->injectBusAbort(tx)) {
            aborted = true;
            ++injectedAborts_;
            VMP_DTRACE(debug::Fault, events_.now(), "spurious abort on ",
                       tx.toString());
        } else if (movesData(tx.type) && hooks_->injectTruncate(tx)) {
            aborted = true;
            ++injectedAborts_;
            const Tick block = timing_.blockNs(tx.bytes);
            bus_time_override = block > timing_.abortNs
                ? timing_.abortNs + (block - timing_.abortNs) / 2
                : timing_.abortNs;
            VMP_DTRACE(debug::Fault, events_.now(),
                       "truncated transfer ", tx.toString(),
                       " busTime=", bus_time_override);
        }
    }

    const Tick bus_time = bus_time_override != 0 ? bus_time_override
        : aborted ? timing_.abortNs
                  : timing_.occupancy(tx.type, tx.bytes);
    VMP_DTRACE(debug::Bus, events_.now(), tx.toString(),
               aborted ? " ABORTED" : " granted", " busTime=",
               bus_time);

    ++transactions_;
    if (aborted) {
        ++aborts_;
        ++typeAborts_[txIndex(tx.type)];
        // The wait of an aborted grant is kept out of queueDelays_
        // (below) for the same completed-only reason as the per-type
        // counters: a retried transaction must account its arbitration
        // wait once per *completed* grant, not once per attempt.
        abortedQueueDelays_.sample(toUsec(queue_delay));
    } else {
        // Per-type counts are *completed* transactions only. An
        // aborted-then-retried transaction would otherwise be counted
        // once per attempt, double-counting during recovery storms;
        // aborted grants are visible via aborts()/abortsOf() and still
        // contribute to transactions_ and bus occupancy.
        ++typeCounts_[txIndex(tx.type)];
        queueDelays_.sample(toUsec(queue_delay));
        if (arb_.discipline == Arbitration::Priority) {
            const unsigned level = levelOf(tx.requester);
            levelDelays_[level].sample(toUsec(queue_delay));
            ++levelGrants_[level];
        }
    }
    // Busy time is charged at *completion* (see complete()); while the
    // transaction is in flight utilization() pro-rates it from these
    // two fields. Charging the full occupancy at issue time used to
    // let mid-run utilization samples exceed 1.0.
    txStartTick_ = events_.now();
    txBusTime_ = bus_time;

    events_.scheduleIn(bus_time,
                       [this, p = std::move(pending), aborted,
                        queue_delay, bus_time]() mutable {
                           complete(std::move(p), aborted, queue_delay,
                                    bus_time);
                       },
                       "bus-complete");
}

void
VmeBus::complete(Pending pending, bool aborted, Tick queue_delay,
                 Tick bus_time)
{
    const BusTransaction &tx = pending.tx;
    if (!aborted) {
        // Architected data movement.
        switch (tx.type) {
          case TxType::ReadShared:
          case TxType::ReadPrivate:
          case TxType::DmaRead:
            mem_.readBlock(tx.paddr, tx.data, tx.bytes);
            break;
          case TxType::WriteBack:
          case TxType::DmaWrite:
            if (tx.rmw && tx.oldData)
                mem_.readBlock(tx.paddr, tx.oldData, tx.bytes);
            mem_.writeBlock(tx.paddr, tx.data, tx.bytes);
            break;
          default:
            break;
        }
        // Concurrent action-table update on the issuing processor's
        // monitor (only when not aborted, Section 3.2).
        if (tx.updatesTable) {
            for (const auto &[id, watcher] : watchers_) {
                if (id == tx.requester)
                    watcher->sideEffectUpdate(tx);
            }
        }
    }

    TxResult result;
    result.aborted = aborted;
    result.queueDelay = queue_delay;
    result.busTime = bus_time;

    // Invariant checking / failure detection: observers see the
    // transaction after data movement and table side effects, before
    // anyone reacts to it.
    for (const auto &observer : txObservers_)
        observer(tx, result);

    if (tracer_ != nullptr) {
        obs::TraceEvent event;
        event.kind = obs::EventKind::BusTx;
        event.at = events_.now() - bus_time;
        event.addr = tx.paddr;
        event.arg0 = bus_time;
        event.arg1 = queue_delay;
        event.master = tx.requester;
        event.track = traceTrack_;
        event.aux = static_cast<std::uint8_t>(txIndex(tx.type)) |
                    (aborted ? 0x80u : 0u);
        tracer_->record(event);
    }

    // The transaction has now actually occupied the bus for bus_time
    // ticks; account it. (grant() below either starts the next
    // transaction — resetting the in-flight fields at the current
    // tick — or clears busy_.)
    busyTicks_ += bus_time;

    // Grant the next queued transaction before running the completion
    // so a retry issued from the callback queues behind existing work.
    Completion done = std::move(pending.done);
    grant();
    if (done)
        done(result);
}

double
VmeBus::utilization() const
{
    const Tick now = events_.now();
    if (now == 0)
        return 0.0;
    // Completed occupancy plus the elapsed share of the transaction
    // currently holding the bus, so a sample taken mid-transfer never
    // counts bus time that has not yet been spent (and can therefore
    // never exceed 1.0).
    Tick busy = busyTicks_;
    if (busy_)
        busy += std::min(now - txStartTick_, txBusTime_);
    return static_cast<double>(busy) / static_cast<double>(now);
}

const Counter &
VmeBus::countOf(TxType type) const
{
    return typeCounts_[txIndex(type)];
}

const Counter &
VmeBus::abortsOf(TxType type) const
{
    return typeAborts_[txIndex(type)];
}

const Histogram &
VmeBus::queueDelaysOfLevel(unsigned level) const
{
    if (level >= levelDelays_.size())
        panic("bus-request level ", level, " has no delay histogram (",
              levelDelays_.size(), " levels tracked)");
    return levelDelays_[level];
}

const Counter &
VmeBus::grantsOfLevel(unsigned level) const
{
    if (level >= levelGrants_.size())
        panic("bus-request level ", level, " has no grant counter (",
              levelGrants_.size(), " levels tracked)");
    return levelGrants_[level];
}

void
VmeBus::registerStats(StatGroup &group) const
{
    group.addCounter("transactions", "bus transactions granted",
                     transactions_);
    group.addCounter("aborts", "transactions aborted by a monitor",
                     aborts_);
    group.addCounter("injected_aborts",
                     "aborts forced by fault injection", injectedAborts_);
    group.addCounter("fenced_drops",
                     "requests dropped at the quarantine fence",
                     fencedDrops_);
    group.addCounter("read_shared", "read-shared transactions",
                     countOf(TxType::ReadShared));
    group.addCounter("read_private", "read-private transactions",
                     countOf(TxType::ReadPrivate));
    group.addCounter("assert_ownership", "assert-ownership transactions",
                     countOf(TxType::AssertOwnership));
    group.addCounter("write_back", "write-back transactions",
                     countOf(TxType::WriteBack));
    group.addCounter("notify", "notify transactions",
                     countOf(TxType::Notify));
    group.addCounter("reclaim", "recovery reclaim transactions",
                     countOf(TxType::Reclaim));
    group.addCounter("board_mask", "recovery board-mask transactions",
                     countOf(TxType::BoardMask));
    group.addHistogram("queue_delay_us",
                       "arbitration queueing delay distribution of "
                       "completed grants (us)",
                       queueDelays_);
    group.addHistogram("aborted_queue_delay_us",
                       "arbitration queueing delay distribution of "
                       "aborted grants (us)",
                       abortedQueueDelays_);
    for (std::size_t l = 0; l < levelDelays_.size(); ++l) {
        const std::string suffix = std::to_string(l);
        group.addHistogram("queue_delay_us_br" + suffix,
                           "completed-grant queueing delays on "
                           "bus-request level " + suffix + " (us)",
                           levelDelays_[l]);
        group.addCounter("grants_br" + suffix,
                         "completed grants on bus-request level " +
                             suffix,
                         levelGrants_[l]);
    }
}

} // namespace vmp::mem
