/**
 * @file
 * The block copier embedded in each cache controller (Section 2). It
 * moves whole cache pages between main memory and the cache over the
 * bus's sequential block-transfer mode, concurrently with the CPU
 * executing out of local memory, and carries the cache-page flags /
 * action-table entry to apply if the copy succeeds.
 */

#ifndef VMP_MEM_BLOCK_COPIER_HH
#define VMP_MEM_BLOCK_COPIER_HH

#include <cstdint>
#include <functional>

#include "mem/vme_bus.hh"
#include "sim/stats.hh"

namespace vmp::mem
{

/**
 * One processor board's block-copy engine. At most one copy operation
 * may be in flight per copier, matching the hardware (the CPU blocks on
 * the cache controller mid-instruction if it references the cache while
 * a transfer is in progress).
 */
class BlockCopier
{
  public:
    using Done = std::function<void(const TxResult &)>;

    BlockCopier(std::uint32_t master_id, VmeBus &bus);

    /**
     * Start a page read (read-shared or read-private per @p exclusive)
     * from main memory into @p buffer.
     */
    void readPage(Addr paddr, std::uint8_t *buffer, std::uint32_t bytes,
                  bool exclusive, Done done);

    /**
     * Write a page back to main memory, releasing ownership. The
     * requester's action-table entry becomes @p after (Ignore when the
     * page is being dropped, Shared when it is being downgraded).
     */
    void writeBackPage(Addr paddr, const std::uint8_t *buffer,
                       std::uint32_t bytes, ActionEntry after, Done done);

    bool busy() const { return busy_; }

    /**
     * Attach (or detach, with nullptr) a fault-injection hook; when
     * set, injectCopierStall() may delay a transfer's bus request by a
     * bounded number of ticks (the copier stays busy meanwhile, so the
     * CPU blocks exactly as it would on a slow engine).
     */
    void setFaultHooks(FaultHooks *hooks) { hooks_ = hooks; }

    /**
     * Attach (or detach, with nullptr) an event tracer; each transfer
     * records a Copy span on @p track covering the whole engine
     * occupancy (including any injected stall). Observation only.
     */
    void
    setTracer(obs::EventTracer *tracer, std::uint16_t track)
    {
        tracer_ = tracer;
        traceTrack_ = track;
    }

    const Counter &copies() const { return copies_; }
    const Counter &abortedCopies() const { return aborted_; }
    /** Transfers delayed by an injected copier stall. */
    const Counter &stalledCopies() const { return stalled_; }

  private:
    void start(const BusTransaction &tx, Done done);

    std::uint32_t masterId_;
    VmeBus &bus_;
    bool busy_ = false;
    FaultHooks *hooks_ = nullptr;
    obs::EventTracer *tracer_ = nullptr;
    std::uint16_t traceTrack_ = 0;
    /** Tick start() ran at (valid while busy_; for the Copy span). */
    Tick startedAt_ = 0;
    Counter copies_;
    Counter aborted_;
    Counter stalled_;
};

} // namespace vmp::mem

#endif // VMP_MEM_BLOCK_COPIER_HH
