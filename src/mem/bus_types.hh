/**
 * @file
 * Bus transaction vocabulary. Section 3.1 defines six transaction types
 * associated with bus-monitor operation — read-shared, read-private,
 * assert-ownership, write-back, notify and write-action-table — of which
 * the first five are "consistency-related". DMA devices and device
 * register accesses use normal transactions that monitors never abort.
 */

#ifndef VMP_MEM_BUS_TYPES_HH
#define VMP_MEM_BUS_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/types.hh"

namespace vmp::mem
{

/** All bus transaction types the model distinguishes. */
enum class TxType : std::uint8_t
{
    ReadShared,       //!< acquire a shared copy of a cache page
    ReadPrivate,      //!< acquire an exclusive copy of a cache page
    AssertOwnership,  //!< gain ownership without reading from memory
    WriteBack,        //!< write page back, releasing ownership
    Notify,           //!< notification signal (Section 5.4)
    WriteActionTable, //!< explicit action-table entry update
    DmaRead,          //!< normal (non-consistency) device read
    DmaWrite,         //!< normal (non-consistency) device write
    /**
     * Recovery-coordinator broadcast reclaiming one frame a failstopped
     * board owned Protect. Live monitors never hold a valid copy of a
     * frame somebody else owns Protect, so no watcher action is needed;
     * the transaction exists for bus occupancy and accounting during a
     * recovery storm.
     */
    Reclaim,
    /**
     * Recovery-coordinator broadcast announcing that a dead board's
     * monitor has been masked out of consistency arbitration. One short
     * bus tenure; watchers take no action.
     */
    BoardMask,
};

/** Number of distinct TxType values (array-sizing constant). */
inline constexpr std::size_t kTxTypes = 10;

/** True for the five consistency-related types of Section 3.1. */
constexpr bool
isConsistencyRelated(TxType type)
{
    switch (type) {
      case TxType::ReadShared:
      case TxType::ReadPrivate:
      case TxType::AssertOwnership:
      case TxType::WriteBack:
      case TxType::Notify:
        return true;
      default:
        return false;
    }
}

/** True for types that move a block of data over the bus. */
constexpr bool
movesData(TxType type)
{
    switch (type) {
      case TxType::ReadShared:
      case TxType::ReadPrivate:
      case TxType::WriteBack:
      case TxType::DmaRead:
      case TxType::DmaWrite:
        return true;
      default:
        return false;
    }
}

/**
 * True for the failstop-recovery broadcast types. Recovery transactions
 * are deliberately *not* consistency-related: a masked (dead) monitor
 * must not abort them, and live monitors have nothing to do — the
 * single-owner invariant guarantees no live board holds a valid copy of
 * a frame the dead board owned Protect.
 */
constexpr bool
isRecoveryTx(TxType type)
{
    return type == TxType::Reclaim || type == TxType::BoardMask;
}

const char *txTypeName(TxType type);

/** 2-bit action-table entry values (Section 3.2). */
enum class ActionEntry : std::uint8_t
{
    Ignore = 0b00,    //!< 00 - do nothing
    Shared = 0b01,    //!< 01 - interrupt on read-private/assert-ownership
    Protect = 0b10,   //!< 10 - abort + interrupt on consistency tx
    Notify = 0b11,    //!< 11 - interrupt on notification transaction
};

const char *actionEntryName(ActionEntry entry);

/**
 * One bus transaction. @c data points at the requester-side buffer for
 * block-moving types (destination for reads, source for write-back /
 * DMA write); it must stay valid until the completion callback runs.
 */
struct BusTransaction
{
    TxType type = TxType::ReadShared;
    /** Issuing master: CPU id, or a device id for DMA. */
    std::uint32_t requester = 0;
    /** Physical byte address (cache-page aligned for block types). */
    Addr paddr = 0;
    /** Transfer length in bytes (0 for non-block types). */
    std::uint32_t bytes = 0;
    /** Requester-side data buffer for block types. */
    std::uint8_t *data = nullptr;
    /**
     * Action-table entry the issuing CPU's monitor should take for this
     * frame if the transaction succeeds (the Section 3.2 "side effect"
     * update). Also the payload of WriteActionTable.
     */
    ActionEntry newEntry = ActionEntry::Ignore;
    /** Whether the side-effect update applies. */
    bool updatesTable = false;
    /**
     * Atomic read-modify-write (DmaWrite only): the old memory value is
     * copied into @c oldData before @c data is written, in one bus
     * tenure — the indivisible access used for uncached test-and-set.
     */
    bool rmw = false;
    std::uint8_t *oldData = nullptr;

    std::string toString() const;
};

/** What a bus watcher (monitor) decides about a transaction. */
enum class WatchVerdict : std::uint8_t
{
    Ignore,           //!< no action
    Interrupt,        //!< interrupt local processor, let tx proceed
    AbortAndInterrupt //!< abort the transaction and interrupt
};

} // namespace vmp::mem

#endif // VMP_MEM_BUS_TYPES_HH
