/**
 * @file
 * Optional fault-injection hook interface. Hardware-level components
 * (bus, interrupt FIFO, block copier, bus monitor) carry a nullable
 * pointer to a FaultHooks implementation; when the pointer is null —
 * the default — the components behave exactly as before and pay only
 * an untaken branch. The concrete implementation lives in
 * src/fault/injector.{hh,cc}; this interface sits in mem/ so the
 * low-level components need no dependency on the fault library.
 *
 * Contract for implementations: a hook call is an *opportunity*, not
 * an order. Returning false / 0 means "no fault here". Implementations
 * must be deterministic functions of their own seeded state so that
 * a given (schedule, seed, workload) triple replays bit-identically.
 */

#ifndef VMP_MEM_FAULT_HOOKS_HH
#define VMP_MEM_FAULT_HOOKS_HH

#include <cstdint>

#include "sim/types.hh"

namespace vmp::mem
{

struct BusTransaction;

/** Injection points offered by the hardware models. */
class FaultHooks
{
  public:
    virtual ~FaultHooks() = default;

    /**
     * Called by the bus for every consistency-related transaction that
     * survived the monitors' consistency check. Returning true aborts
     * the transaction anyway — a spurious abort, indistinguishable to
     * software from a monitor-issued one (Section 3.3 requires the
     * retry path to cope with arbitrary abort patterns).
     */
    virtual bool injectBusAbort(const BusTransaction &tx) = 0;

    /**
     * Called by the bus for block (data-moving) consistency
     * transactions that were not aborted. Returning true truncates the
     * transfer mid-block: the transaction terminates early as an abort
     * (no architected data moves, per the bus's abort semantics) but
     * still occupies the bus for part of the block time.
     */
    virtual bool injectTruncate(const BusTransaction &tx) = 0;

    /**
     * Called by the block copier before issuing a transfer. A nonzero
     * return stalls the copier for that many ticks before the
     * transaction is queued (models a slow or contended copier engine).
     */
    virtual Tick injectCopierStall(const BusTransaction &tx) = 0;

    /**
     * Called by the interrupt FIFO on every push. Returning true drops
     * the word as if the FIFO were full, setting the sticky overflow
     * flag — forcing the software recovery sweep of Section 3.2.
     */
    virtual bool injectFifoDrop() = 0;

    /**
     * Called by the bus monitor when raising the interrupt line. A
     * nonzero return delays the line (and therefore interrupt service)
     * by that many ticks.
     */
    virtual Tick injectInterruptDelay() = 0;

    /**
     * Called by the bus monitor of board @p owner once per observed
     * bus transaction (even while masked — babble is internal FIFO
     * hardware, not bus-side). The return value is the number of
     * spurious garbage interrupt words the monitor should fabricate
     * into its own FIFO right now (a "babbling FIFO" partial failure).
     * Defaulted so implementations that predate the partial-failure
     * model keep compiling; the default babbles nothing.
     */
    virtual std::uint32_t injectFifoBabble(std::uint32_t owner)
    {
        (void)owner;
        return 0;
    }
};

} // namespace vmp::mem

#endif // VMP_MEM_FAULT_HOOKS_HH
