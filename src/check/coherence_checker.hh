/**
 * @file
 * Coherence-invariant checker: an omniscient bus observer that shadows
 * the global state of one bus segment and asserts the VMP ownership
 * protocol's invariants. Live cache-state inspection — observing
 * correctness rather than assuming it — is the point: the paper argues
 * software can recover from every consistency hazard, and this is the
 * component that would catch it being wrong.
 *
 * Two granularities:
 *  - online, per transaction (cheap, bus-side only): after every
 *    completed transaction, at most one monitor may hold a 10-Protect
 *    entry for the affected frame (single-owner invariant I1);
 *  - full sweep at quiescence (checkFull(), event queue drained):
 *    all invariants, including the software-side ones that are only
 *    required to hold once in-flight handlers have completed:
 *
 *      I1  at most one monitor holds Protect for any frame;
 *      I2  controller bookkeeping matches its monitor's table:
 *          Private frame => own entry Protect, Shared frame => Shared;
 *      I3  the software shadow table equals the hardware table;
 *      I4  at most one controller believes it owns a frame privately;
 *      I5  a modified (or exclusive-flagged) slot implies its frame is
 *          held Private;
 *      I6  clean cached copies are byte-identical to the memory-server
 *          image (when the cache stores data);
 *      I7  the slot<->frame maps and the cache's valid bits agree in
 *          both directions.
 *
 * Stale 01-Shared entries with no cached copy are *legal* (clean
 * replacement leaves them lazily, Section 3.2); stale 10-Protect
 * entries are not. The checker never mutates simulation state and is
 * absent (zero-cost) unless installed.
 */

#ifndef VMP_CHECK_COHERENCE_CHECKER_HH
#define VMP_CHECK_COHERENCE_CHECKER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "proto/controller.hh"
#include "sim/stats.hh"

namespace vmp::check
{

struct CheckerOptions
{
    /** Compare clean cached pages against memory (I6). */
    bool checkData = true;
    /** Keep at most this many human-readable violation reports. */
    std::size_t maxReports = 16;
};

/** Invariant checker for one bus segment. */
class CoherenceChecker
{
  public:
    /**
     * @param bus the bus segment to observe
     * @param memory the memory-server image behind that bus
     */
    CoherenceChecker(mem::VmeBus &bus, mem::PhysMem &memory,
                     CheckerOptions options = {});

    /**
     * Register a processor board: its controller's software state and
     * its bus monitor's table both join the checked set.
     */
    void addController(const proto::CacheController &controller);

    /**
     * Register a monitor without an attached controller (e.g. the
     * inter-bus cache board's global-side monitor): its table joins
     * the single-owner check only.
     */
    void addMonitor(const monitor::BusMonitor &monitor);

    /** Start observing: installs the bus transaction observer. */
    void install();

    /**
     * Full invariant sweep. Only meaningful at quiescence (event queue
     * drained) — software state legitimately lags the bus while
     * handlers are in flight. @return violations found by this sweep.
     */
    std::uint64_t checkFull();

    /**
     * Single-owner (I1) sweep over every non-Ignore frame. Unlike
     * checkFull() this is bus-side only and therefore valid at *any*
     * time, not just quiescence; the recovery coordinator runs it
     * immediately after reclaiming a dead board's frames to verify the
     * single-owner invariant was restored mid-run. @return violations
     * found by this sweep.
     */
    std::uint64_t checkOwnersSweep();

    const Counter &violations() const { return violations_; }
    const Counter &transactionsObserved() const { return observed_; }
    /** First maxReports human-readable violation descriptions. */
    const std::vector<std::string> &reports() const { return reports_; }

    void registerStats(StatGroup &group) const;

  private:
    void onTransaction(const mem::BusTransaction &tx,
                       const mem::TxResult &result);
    /** I1 for a single frame (online per-transaction check). */
    void checkFrameOwners(std::uint64_t frame, const char *context);
    void report(const std::string &text);

    std::uint32_t pageBytes() const;

    mem::VmeBus &bus_;
    mem::PhysMem &mem_;
    CheckerOptions opts_;
    std::vector<const proto::CacheController *> controllers_;
    /** All monitors (controllers' plus monitor-only registrations). */
    std::vector<const monitor::BusMonitor *> monitors_;
    bool installed_ = false;

    Counter observed_;
    Counter violations_;
    std::vector<std::string> reports_;
};

} // namespace vmp::check

#endif // VMP_CHECK_COHERENCE_CHECKER_HH
