#include "check/coherence_checker.hh"

#include <cstring>
#include <map>
#include <set>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::check
{

CoherenceChecker::CoherenceChecker(mem::VmeBus &bus, mem::PhysMem &memory,
                                   CheckerOptions options)
    : bus_(bus), mem_(memory), opts_(options)
{
}

std::uint32_t
CoherenceChecker::pageBytes() const
{
    return mem_.pageBytes();
}

void
CoherenceChecker::addController(const proto::CacheController &controller)
{
    controllers_.push_back(&controller);
    monitors_.push_back(&controller.busMonitor());
}

void
CoherenceChecker::addMonitor(const monitor::BusMonitor &monitor)
{
    monitors_.push_back(&monitor);
}

void
CoherenceChecker::install()
{
    if (installed_)
        fatal("coherence checker installed twice on one bus");
    installed_ = true;
    bus_.addTxObserver(
        [this](const mem::BusTransaction &tx,
               const mem::TxResult &result) {
            onTransaction(tx, result);
        });
}

void
CoherenceChecker::report(const std::string &text)
{
    ++violations_;
    VMP_DTRACE(debug::Check, bus_.eventQueue().now(),
               "VIOLATION: ", text);
    if (reports_.size() < opts_.maxReports)
        reports_.push_back(text);
}

void
CoherenceChecker::onTransaction(const mem::BusTransaction &tx,
                                const mem::TxResult &result)
{
    (void)result;
    ++observed_;
    // Online check: bus-side state only. Software bookkeeping (shadow
    // tables, frame maps) legitimately lags the transaction that is
    // completing right now — handlers run afterwards — so only the
    // hardware single-owner invariant is checkable per transaction.
    if (mem::isConsistencyRelated(tx.type) ||
        tx.type == mem::TxType::WriteActionTable) {
        checkFrameOwners(tx.paddr / pageBytes(), tx.toString().c_str());
    }
}

void
CoherenceChecker::checkFrameOwners(std::uint64_t frame,
                                   const char *context)
{
    std::size_t owners = 0;
    for (const monitor::BusMonitor *monitor : monitors_) {
        // A masked monitor is off the bus: its stale entries neither
        // abort anything nor count as ownership (a live board may
        // legally re-acquire a frame mid-reclaim).
        if (monitor->masked())
            continue;
        if (monitor->table().get(frame) == mem::ActionEntry::Protect)
            ++owners;
    }
    if (owners > 1) {
        std::ostringstream os;
        os << "I1: frame " << frame << " has " << owners
           << " Protect owners (" << context << ")";
        report(os.str());
    }
}

std::uint64_t
CoherenceChecker::checkOwnersSweep()
{
    const std::uint64_t before = violations_.value();
    std::set<std::uint64_t> frames_of_interest;
    for (const monitor::BusMonitor *monitor : monitors_) {
        if (monitor->masked())
            continue;
        for (const std::uint64_t frame :
             monitor->table().nonIgnoredFrames()) {
            frames_of_interest.insert(frame);
        }
    }
    for (const std::uint64_t frame : frames_of_interest)
        checkFrameOwners(frame, "owners sweep");
    return violations_.value() - before;
}

std::uint64_t
CoherenceChecker::checkFull()
{
    const std::uint64_t before = violations_.value();
    const std::uint32_t page = pageBytes();

    // --- I1: at most one Protect owner per frame, globally ---
    checkOwnersSweep();

    // --- per-controller invariants ---
    std::map<std::uint64_t, std::size_t> private_claims; // I4
    for (const proto::CacheController *ctl : controllers_) {
        // A failstopped board's software state is gone and its masked
        // monitor table is recovery input, not protocol state: skip
        // its per-board invariants until it rejoins.
        if (ctl->dead())
            continue;
        const auto cpu = ctl->cpuId();
        const monitor::ActionTable &table = ctl->busMonitor().table();

        // I2: software frame state vs own hardware table entry.
        for (const auto &[frame, info] : ctl->frameTable()) {
            const mem::ActionEntry entry = table.get(frame);
            if (info.state == proto::FrameState::Private) {
                ++private_claims[frame];
                if (entry != mem::ActionEntry::Protect) {
                    std::ostringstream os;
                    os << "I2: cpu" << cpu << " holds frame " << frame
                       << " Private but its entry is "
                       << mem::actionEntryName(entry);
                    report(os.str());
                }
            } else if (entry != mem::ActionEntry::Shared) {
                std::ostringstream os;
                os << "I2: cpu" << cpu << " holds frame " << frame
                   << " Shared but its entry is "
                   << mem::actionEntryName(entry);
                report(os.str());
            }
        }

        // I2 (reverse): a Protect entry must be backed by a Private
        // frame — stale Protect would abort every other master forever.
        for (const std::uint64_t frame : table.nonIgnoredFrames()) {
            if (table.get(frame) != mem::ActionEntry::Protect)
                continue;
            const auto it = ctl->frameTable().find(frame);
            if (it == ctl->frameTable().end() ||
                it->second.state != proto::FrameState::Private) {
                std::ostringstream os;
                os << "I2: cpu" << cpu << " table entry Protect for "
                   << "frame " << frame
                   << " without Private bookkeeping (stale 10)";
                report(os.str());
            }
        }

        // I3: software shadow table == hardware table.
        for (const auto &[frame, entry] : ctl->shadowTable()) {
            const mem::ActionEntry actual = table.get(frame);
            if (actual != entry) {
                std::ostringstream os;
                os << "I3: cpu" << cpu << " shadow says "
                   << mem::actionEntryName(entry) << " for frame "
                   << frame << " but the table holds "
                   << mem::actionEntryName(actual);
                report(os.str());
            }
        }

        // I5/I7: slot maps vs cache flags, and dirty => Private.
        const cache::Cache &cache = ctl->cache();
        std::set<std::uint64_t> dirty_frames;
        for (const auto &[slot, frame] : ctl->slotFrames()) {
            const cache::Slot &s = cache.slot(slot);
            if (!s.valid()) {
                std::ostringstream os;
                os << "I7: cpu" << cpu << " slot " << slot
                   << " tracked for frame " << frame
                   << " but invalid in the cache";
                report(os.str());
                continue;
            }
            if (s.modified())
                dirty_frames.insert(frame);
            if (s.modified() || s.exclusive()) {
                const auto it = ctl->frameTable().find(frame);
                if (it == ctl->frameTable().end() ||
                    it->second.state != proto::FrameState::Private) {
                    std::ostringstream os;
                    os << "I5: cpu" << cpu << " slot " << slot
                       << (s.modified() ? " modified" : " exclusive")
                       << " but frame " << frame << " is not Private";
                    report(os.str());
                }
            }
        }
        const std::uint64_t slots = cache.config().totalSlots();
        for (std::uint64_t index = 0; index < slots; ++index) {
            const auto slot = static_cast<cache::SlotIndex>(index);
            if (cache.slot(slot).valid() &&
                ctl->slotFrames().find(slot) ==
                    ctl->slotFrames().end()) {
                std::ostringstream os;
                os << "I7: cpu" << cpu << " slot " << slot
                   << " valid in the cache but untracked";
                report(os.str());
            }
        }

        // I6: clean copies match the memory-server image. Skipped for
        // frames with a dirty slot (memory is legitimately stale).
        if (opts_.checkData && cache.config().storeData) {
            std::vector<std::uint8_t> image(page);
            for (const auto &[slot, frame] : ctl->slotFrames()) {
                const cache::Slot &s = cache.slot(slot);
                if (!s.valid() || dirty_frames.count(frame) != 0)
                    continue;
                mem_.readBlock(frame * page, image.data(), page);
                if (std::memcmp(s.data.data(), image.data(), page) !=
                    0) {
                    std::ostringstream os;
                    os << "I6: cpu" << cpu << " clean slot " << slot
                       << " differs from memory frame " << frame;
                    report(os.str());
                }
            }
        }
    }

    // --- I4: at most one controller believes it owns a frame ---
    for (const auto &[frame, claims] : private_claims) {
        if (claims > 1) {
            std::ostringstream os;
            os << "I4: frame " << frame << " claimed Private by "
               << claims << " controllers";
            report(os.str());
        }
    }

    return violations_.value() - before;
}

void
CoherenceChecker::registerStats(StatGroup &group) const
{
    group.addCounter("transactions_observed",
                     "bus transactions observed by the checker",
                     observed_);
    group.addCounter("violations",
                     "coherence-invariant violations detected",
                     violations_);
}

} // namespace vmp::check
