#include "vm/backing_store.hh"

#include "sim/logging.hh"
#include "vm/page_table.hh"

namespace vmp::vm
{

void
BackingStore::store(Asid asid, std::uint64_t vpn,
                    std::vector<std::uint8_t> data)
{
    if (data.size() != vmPageBytes)
        panic("backing store: page image of ", data.size(), " bytes");
    pages_[{asid, vpn}] = std::move(data);
    ++stores_;
}

std::optional<std::vector<std::uint8_t>>
BackingStore::fetch(Asid asid, std::uint64_t vpn)
{
    const auto it = pages_.find({asid, vpn});
    if (it == pages_.end())
        return std::nullopt;
    ++fetches_;
    return it->second;
}

void
BackingStore::dropSpace(Asid asid)
{
    for (auto it = pages_.begin(); it != pages_.end();) {
        if (it->first.first == asid)
            it = pages_.erase(it);
        else
            ++it;
    }
}

} // namespace vmp::vm
