/**
 * @file
 * Simulated backing store ("paging disk") for the virtual-memory
 * system: page-sized blobs keyed by <asid, vpn>, with a configurable
 * access latency standing in for disk + DMA time.
 */

#ifndef VMP_VM_BACKING_STORE_HH
#define VMP_VM_BACKING_STORE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::vm
{

/** Paging store. */
class BackingStore
{
  public:
    explicit BackingStore(Tick latency_ns = usec(500))
        : latency_(latency_ns)
    {}

    /** Simulated access latency for one page transfer. */
    Tick latency() const { return latency_; }

    /** Save a page image (page-out). */
    void store(Asid asid, std::uint64_t vpn,
               std::vector<std::uint8_t> data);

    /** Load a page image, if this page was ever stored. */
    std::optional<std::vector<std::uint8_t>> fetch(Asid asid,
                                                   std::uint64_t vpn);

    /** Drop all pages of an address space. */
    void dropSpace(Asid asid);

    std::size_t pagesHeld() const { return pages_.size(); }
    const Counter &stores() const { return stores_; }
    const Counter &fetches() const { return fetches_; }

  private:
    Tick latency_;
    std::map<std::pair<Asid, std::uint64_t>,
             std::vector<std::uint8_t>> pages_;
    Counter stores_;
    Counter fetches_;
};

} // namespace vmp::vm

#endif // VMP_VM_BACKING_STORE_HH
