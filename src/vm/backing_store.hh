/**
 * @file
 * Compatibility alias: the passive per-<asid, vpn> page-image store
 * grew into the backing/ memory-tier subsystem. The durable image
 * plane (what `vm::BackingStore` used to be) is backing::PageStore;
 * the timing model around it is backing::MemoryTier.
 */

#ifndef VMP_VM_BACKING_STORE_HH
#define VMP_VM_BACKING_STORE_HH

#include "backing/page_store.hh"
#include "vm/page_table.hh"

namespace vmp::vm
{

using BackingStore = backing::PageStore;

static_assert(vmPageBytes == backing::kDefaultPageBytes,
              "vm page and default image granule must agree");

} // namespace vmp::vm

#endif // VMP_VM_BACKING_STORE_HH
