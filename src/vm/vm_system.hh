/**
 * @file
 * The VMP virtual-memory system: frame allocation, per-ASID address
 * spaces with two-level page tables stored in (simulated) physical
 * memory and read through the cache, demand paging against a backing
 * store, and the Section 3.4 translation-consistency operations —
 * read-private on the PTE's cache page (implicit in the cached PTE
 * write), assert-ownership on every cache frame of the mapped page to
 * flush stale copies from all caches, then the PTE update.
 *
 * Kernel virtual addresses map linearly onto physical memory
 * (kva = kernelBase + paddr), modelling the kernel map held in local
 * memory: translating a kernel address never faults and never walks
 * tables, which bounds nested-miss depth exactly as the paper requires.
 */

#ifndef VMP_VM_VM_SYSTEM_HH
#define VMP_VM_VM_SYSTEM_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "backing/budget.hh"
#include "backing/memory_tier.hh"
#include "mem/phys_mem.hh"
#include "proto/controller.hh"
#include "proto/translator.hh"
#include "sim/event.hh"
#include "sim/stats.hh"
#include "vm/backing_store.hh"
#include "vm/page_table.hh"

namespace vmp::vm
{

/** Start of the kernel window onto physical memory. */
constexpr Addr kernelBase = 0x1800'0000;
/** Start of user virtual space. */
constexpr Addr userBase = 0x2000'0000;

/** VM configuration knobs. */
struct VmConfig
{
    /** Low frames reserved for uncached use (locks, mailboxes). */
    std::uint32_t reservedFrames = 4;
    /** Backing-store latency per page transfer. Overrides
     *  tier.diskLatencyNs (legacy knob; keeps old configs working). */
    Tick diskLatencyNs = usec(500);
    /** Pageout stops once this many frames are free. */
    std::uint32_t freeTarget = 8;
    /** Memory-tier behavior. The default (Mirror mode) reproduces the
     *  legacy passive store bit-for-bit; tier.pageBytes and
     *  tier.diskLatencyNs are overridden from this config. */
    backing::TierConfig tier;
};

/** Allocator of vm-page frames over physical memory. */
class FrameAllocator
{
  public:
    FrameAllocator(std::uint64_t mem_bytes, std::uint32_t reserved);

    std::optional<std::uint32_t> alloc();
    void free(std::uint32_t frame);

    std::uint32_t totalFrames() const { return total_; }
    std::uint32_t freeFrames() const
    {
        return static_cast<std::uint32_t>(freeList_.size());
    }

  private:
    std::uint32_t total_;
    std::deque<std::uint32_t> freeList_;
};

/** One address space: the root directory held in "local memory". */
struct AddressSpace
{
    Asid asid = 0;
    /** directory index -> physical frame of the page-table page. */
    std::map<std::uint32_t, std::uint32_t> root;
};

/** A resident user page, for pageout victim scanning. */
struct ResidentPage
{
    Asid asid = 0;
    std::uint64_t vpn = 0;
    std::uint32_t frame = 0;
};

class VmSystem;

/**
 * Translator walking the real page tables via cached PTE reads (may
 * nest-miss), with the kernel window resolved from local memory. Bind
 * it to a VmSystem after the machine is constructed.
 */
class VmTranslator : public proto::Translator
{
  public:
    void bind(VmSystem &system) { system_ = &system; }

    void translate(const proto::TranslateRequest &req,
                   proto::CacheController &controller,
                   proto::TranslateDone done) override;

  private:
    VmSystem *system_ = nullptr;
};

/** The virtual-memory manager. */
class VmSystem
{
  public:
    using Done = std::function<void()>;

    VmSystem(EventQueue &events, mem::PhysMem &memory,
             const VmConfig &config = {});

    const VmConfig &config() const { return cfg_; }
    FrameAllocator &allocator() { return allocator_; }
    /** The tier's durable image plane (legacy accessor). */
    BackingStore &backingStore() { return tier_.images(); }
    /** The modeled memory-tier node behind demand paging. */
    backing::MemoryTier &tier() { return tier_; }
    AddressSpace &space(Asid asid);

    /**
     * Arbitrate frame usage through @p budget: faults and occupancy
     * are reported per address space (clients auto-register as
     * "asidN"), and pageout prefers victims of over-grant spaces.
     * Null detaches. The controller is not owned.
     */
    void setBudgetController(backing::BudgetController *budget)
    {
        budget_ = budget;
    }

    /**
     * Install this VM system as @p controller's fault handler. The
     * controller must already use a VmTranslator bound to this system.
     */
    void attach(proto::CacheController &controller);

    /** Kernel virtual address of a physical address. */
    static Addr kvaOf(Addr paddr) { return kernelBase + paddr; }
    /** Physical address behind a kernel virtual address. */
    Addr paddrOfKva(Addr kva) const;
    /** True if @p vaddr lies in the kernel window. */
    bool isKernelAddr(Addr vaddr) const;

    /** Physical byte address of the PTE for <asid, vaddr>, if the
     *  page-table page exists. */
    std::optional<Addr> pteAddr(Asid asid, Addr vaddr);

    // --- pmap operations (Section 3.4), executed via a controller ---

    /**
     * Map <asid, vaddr> to @p frame with the given user/sup
     * permissions. Performs the full consistency sequence if the entry
     * was previously valid.
     */
    void mapPage(proto::CacheController &ctl, Asid asid, Addr vaddr,
                 std::uint32_t frame, bool user_read, bool user_write,
                 bool sup_write, Done done);

    /**
     * Remove the mapping of <asid, vaddr>; flushes every cache frame
     * of the old page from all caches. Yields the old frame (or
     * nothing if the mapping was not valid).
     */
    void unmapPage(proto::CacheController &ctl, Asid asid, Addr vaddr,
                   std::function<void(std::optional<std::uint32_t>)>
                       done);

    /**
     * Mark <asid, vaddr> as non-shared (Section 5.4 hint): subsequent
     * read misses fetch it read-private, pre-empting the write
     * upgrade. The PTE must be valid.
     */
    void setPrivateHint(proto::CacheController &ctl, Asid asid,
                        Addr vaddr, Done done);

    /**
     * Delete an address space (Section 3.4): unmap and free every
     * resident page (flushing all caches), release its page-table
     * pages and drop its backing-store images.
     */
    void destroySpace(proto::CacheController &ctl, Asid asid,
                      Done done);

    /**
     * Page out one resident page chosen by the clock algorithm
     * (skipping referenced pages and clearing their reference bits).
     * Yields false if nothing was evictable.
     */
    void pageOutOne(proto::CacheController &ctl,
                    std::function<void(bool)> done);

    /** Run pageout until freeTarget frames are free (daemon body). */
    void pageOutUntilTarget(proto::CacheController &ctl, Done done);

    /** Resident user pages (victim scan order). */
    const std::deque<ResidentPage> &residentPages() const
    {
        return resident_;
    }

    // --- statistics ---
    const Counter &pageFaults() const { return faults_; }
    const Counter &pageIns() const { return pageIns_; }
    const Counter &pageOuts() const { return pageOuts_; }
    const Counter &mapOps() const { return mapOps_; }
    /** Page-ins that had to wait for eviction before allocating. */
    const Counter &stalledPageIns() const { return stalledPageIns_; }
    /** Total ns the miss path spent waiting on eviction. */
    double evictionStallNs() const { return evictionStallNs_.value(); }
    void registerStats(StatGroup &group) const;

    /** Used by VmTranslator. */
    void translateUser(const proto::TranslateRequest &req,
                       proto::CacheController &controller,
                       proto::TranslateDone done);

  private:
    friend class VmTranslator;

    /** Handle a translation fault: demand-page or die. */
    void handleFault(proto::CacheController &ctl,
                     const proto::TranslateRequest &req, Done retry);
    /** Allocate (paging out if needed), fill and map a page. */
    void pageIn(proto::CacheController &ctl, Asid asid,
                std::uint64_t vpn, Done done);
    /** Flush, save to the tier and unmap one resident page (already
     *  removed from the resident list). */
    void evictPage(proto::CacheController &ctl,
                   const ResidentPage &page, Addr pte_paddr,
                   std::function<void(bool)> done);
    /** Budget-controller client id of @p asid (registers lazily). */
    std::uint32_t budgetClientOf(Asid asid);
    void noteBudgetFault(Asid asid);
    void noteBudgetUse(Asid asid, std::int32_t delta);
    /** Ensure the page-table page for <asid, vaddr> exists. */
    std::uint32_t ensurePtPage(Asid asid, Addr vaddr);
    /** Flush all cache frames of vm frame @p frame from all caches. */
    void flushVmFrame(proto::CacheController &ctl, std::uint32_t frame,
                      Done done);
    /** Write a PTE through the cache with ownership. */
    void writePte(proto::CacheController &ctl, Addr pte_paddr,
                  Pte pte, Done done);

    EventQueue &events_;
    mem::PhysMem &memory_;
    VmConfig cfg_;
    FrameAllocator allocator_;
    backing::MemoryTier tier_;
    backing::BudgetController *budget_ = nullptr;
    std::map<Asid, std::uint32_t> budgetClient_;
    std::map<Asid, AddressSpace> spaces_;
    std::deque<ResidentPage> resident_;

    Counter faults_;
    Counter pageIns_;
    Counter pageOuts_;
    Counter mapOps_;
    Counter stalledPageIns_;
    Scalar evictionStallNs_;
};

} // namespace vmp::vm

#endif // VMP_VM_VM_SYSTEM_HH
