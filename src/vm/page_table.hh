/**
 * @file
 * Page-table entry codec and virtual-memory constants. VMP stores
 * two-level page tables in (kernel) virtual memory: the per-space root
 * directory lives in local memory (so translation nesting is bounded),
 * while second-level page-table pages are ordinary memory pages whose
 * PTEs are read through the cache — which is why a cache miss can nest
 * (Section 2) and why PTE updates need the Section 3.4 consistency
 * dance.
 */

#ifndef VMP_VM_PAGE_TABLE_HH
#define VMP_VM_PAGE_TABLE_HH

#include <cstdint>

#include "cache/types.hh"
#include "sim/types.hh"

namespace vmp::vm
{

/** Virtual-memory page size (distinct from the cache page size). */
constexpr std::uint32_t vmPageBytes = 4096;
/** 32-bit PTEs per page-table page. */
constexpr std::uint32_t ptesPerPage = vmPageBytes / 4;

/** ASID used for kernel-region accesses (page tables, kernel data). */
constexpr Asid kernelAsid = 0;

/** One page-table entry. */
struct Pte
{
    std::uint32_t raw = 0;

    // Bit layout: [31:12] frame number, [5] modified, [4] referenced,
    // [3] supervisor-writable, [2] user-writable, [1] user-readable,
    // [0] valid.
    static constexpr std::uint32_t validBit = 1u << 0;
    static constexpr std::uint32_t userReadBit = 1u << 1;
    static constexpr std::uint32_t userWriteBit = 1u << 2;
    static constexpr std::uint32_t supWriteBit = 1u << 3;
    static constexpr std::uint32_t referencedBit = 1u << 4;
    static constexpr std::uint32_t modifiedBit = 1u << 5;
    /** Section 5.4 non-shared hint: fetch with read-private. */
    static constexpr std::uint32_t privateHintBit = 1u << 6;

    bool valid() const { return raw & validBit; }
    bool userReadable() const { return raw & userReadBit; }
    bool userWritable() const { return raw & userWriteBit; }
    bool supWritable() const { return raw & supWriteBit; }
    bool referenced() const { return raw & referencedBit; }
    bool modified() const { return raw & modifiedBit; }
    bool privateHint() const { return raw & privateHintBit; }

    /** VM-page frame number this entry maps. */
    std::uint32_t frame() const { return raw >> 12; }

    void setReferenced() { raw |= referencedBit; }
    void clearReferenced() { raw &= ~referencedBit; }
    void setModified() { raw |= modifiedBit; }
    void setPrivateHint() { raw |= privateHintBit; }

    /** Build a valid entry. */
    static Pte
    make(std::uint32_t frame, bool user_read, bool user_write,
         bool sup_write)
    {
        Pte pte;
        pte.raw = (frame << 12) | validBit |
            (user_read ? userReadBit : 0) |
            (user_write ? userWriteBit : 0) |
            (sup_write ? supWriteBit : 0);
        return pte;
    }

    /** Cache-slot protection flags corresponding to this entry. */
    cache::SlotFlags
    slotProt() const
    {
        std::uint8_t prot = 0;
        if (userReadable())
            prot |= cache::FlagUserReadable;
        if (userWritable())
            prot |= cache::FlagUserWritable;
        if (supWritable())
            prot |= cache::FlagSupWritable;
        return static_cast<cache::SlotFlags>(prot);
    }
};

/** Virtual page number of an address. */
constexpr std::uint64_t
vpnOf(Addr vaddr)
{
    return vaddr / vmPageBytes;
}

/** Directory (first-level) index of a virtual page number. */
constexpr std::uint32_t
dirIndexOf(std::uint64_t vpn)
{
    return static_cast<std::uint32_t>(vpn / ptesPerPage);
}

/** Index within the page-table page. */
constexpr std::uint32_t
pteIndexOf(std::uint64_t vpn)
{
    return static_cast<std::uint32_t>(vpn % ptesPerPage);
}

} // namespace vmp::vm

#endif // VMP_VM_PAGE_TABLE_HH
