#include "vm/vm_system.hh"

#include <memory>
#include <string>

#include "sim/debug.hh"
#include "sim/logging.hh"

namespace vmp::vm
{

namespace
{

/** Break a looping closure's self-reference once it terminates. */
void
breakLoop(EventQueue &events,
          const std::shared_ptr<std::function<void()>> &loop)
{
    events.scheduleIn(0, [loop] { *loop = nullptr; }, "vm-loop-gc");
}

/** Tier config with the legacy VmConfig knobs folded in. */
backing::TierConfig
tierConfigOf(const VmConfig &config)
{
    backing::TierConfig tier = config.tier;
    tier.diskLatencyNs = config.diskLatencyNs;
    tier.pageBytes = vmPageBytes;
    return tier;
}

} // namespace

// --------------------------------------------------------------------
// FrameAllocator
// --------------------------------------------------------------------

FrameAllocator::FrameAllocator(std::uint64_t mem_bytes,
                               std::uint32_t reserved)
{
    const std::uint64_t frames = mem_bytes / vmPageBytes;
    if (frames == 0 || reserved >= frames)
        fatal("frame allocator: no allocatable frames");
    total_ = static_cast<std::uint32_t>(frames);
    for (std::uint32_t f = reserved; f < frames; ++f)
        freeList_.push_back(f);
}

std::optional<std::uint32_t>
FrameAllocator::alloc()
{
    if (freeList_.empty())
        return std::nullopt;
    const std::uint32_t frame = freeList_.front();
    freeList_.pop_front();
    return frame;
}

void
FrameAllocator::free(std::uint32_t frame)
{
    if (frame >= total_)
        panic("freeing frame ", frame, " out of range");
    freeList_.push_back(frame);
}

// --------------------------------------------------------------------
// VmTranslator
// --------------------------------------------------------------------

void
VmTranslator::translate(const proto::TranslateRequest &req,
                        proto::CacheController &controller,
                        proto::TranslateDone done)
{
    if (system_ == nullptr)
        fatal("VmTranslator used before bind()");

    if (system_->isKernelAddr(req.vaddr)) {
        // Kernel window: linear map resolved from local memory.
        proto::TranslateResult result;
        result.ok = true;
        result.paddr = system_->paddrOfKva(req.vaddr);
        result.prot = cache::FlagSupWritable;
        done(result);
        return;
    }
    if (req.vaddr < userBase) {
        // Device / boot regions: not translatable memory.
        done(proto::TranslateResult{});
        return;
    }
    system_->translateUser(req, controller, std::move(done));
}

// --------------------------------------------------------------------
// VmSystem
// --------------------------------------------------------------------

VmSystem::VmSystem(EventQueue &events, mem::PhysMem &memory,
                   const VmConfig &config)
    : events_(events), memory_(memory), cfg_(config),
      allocator_(memory.size(), config.reservedFrames),
      tier_(events, tierConfigOf(config))
{
}

AddressSpace &
VmSystem::space(Asid asid)
{
    auto &s = spaces_[asid];
    s.asid = asid;
    return s;
}

void
VmSystem::attach(proto::CacheController &controller)
{
    controller.setFaultHandler(
        [this, &controller](const proto::TranslateRequest &req,
                            Done retry) {
            handleFault(controller, req, std::move(retry));
        });
}

bool
VmSystem::isKernelAddr(Addr vaddr) const
{
    return vaddr >= kernelBase && vaddr < kernelBase + memory_.size();
}

Addr
VmSystem::paddrOfKva(Addr kva) const
{
    if (!isKernelAddr(kva))
        panic("not a kernel address: 0x", std::hex, kva);
    return kva - kernelBase;
}

std::optional<Addr>
VmSystem::pteAddr(Asid asid, Addr vaddr)
{
    const std::uint64_t vpn = vpnOf(vaddr);
    const auto &root = space(asid).root;
    const auto it = root.find(dirIndexOf(vpn));
    if (it == root.end())
        return std::nullopt;
    return static_cast<Addr>(it->second) * vmPageBytes +
        pteIndexOf(vpn) * 4;
}

std::uint32_t
VmSystem::ensurePtPage(Asid asid, Addr vaddr)
{
    const std::uint32_t dir = dirIndexOf(vpnOf(vaddr));
    auto &root = space(asid).root;
    const auto it = root.find(dir);
    if (it != root.end())
        return it->second;
    const auto frame = allocator_.alloc();
    if (!frame)
        fatal("out of physical memory allocating a page-table page");
    // Fresh page tables are zero (all entries invalid); initialization
    // is a non-architected write (OS setup / DMA).
    memory_.zeroInit(static_cast<Addr>(*frame) * vmPageBytes,
                     vmPageBytes);
    root[dir] = *frame;
    return *frame;
}

void
VmSystem::translateUser(const proto::TranslateRequest &req,
                        proto::CacheController &controller,
                        proto::TranslateDone done)
{
    const auto pte_paddr = pteAddr(req.asid, req.vaddr);
    if (!pte_paddr) {
        done(proto::TranslateResult{}); // fault: no page-table page
        return;
    }
    const Addr pte_kva = kvaOf(*pte_paddr);
    controller.readWord(
        kernelAsid, pte_kva, true,
        [this, req, pte_kva, &controller,
         done = std::move(done)](std::uint32_t raw) {
            Pte pte{raw};
            if (!pte.valid()) {
                done(proto::TranslateResult{});
                return;
            }
            proto::TranslateResult result;
            result.ok = true;
            result.paddr = static_cast<Addr>(pte.frame()) * vmPageBytes +
                req.vaddr % vmPageBytes;
            result.prot = pte.slotProt();
            result.privateHint = pte.privateHint();

            // Maintain referenced/modified bits in the PTE (the
            // pageout daemon relies on them; Section 3.4).
            const bool need_ref = !pte.referenced();
            const bool need_mod = req.write && !pte.modified();
            if (need_ref || need_mod) {
                pte.setReferenced();
                if (req.write)
                    pte.setModified();
                controller.writeWord(kernelAsid, pte_kva, pte.raw, true,
                                     [result, done] { done(result); });
            } else {
                done(result);
            }
        });
}

void
VmSystem::handleFault(proto::CacheController &ctl,
                      const proto::TranslateRequest &req, Done retry)
{
    if (req.vaddr < userBase)
        fatal("unresolvable fault at 0x", std::hex, req.vaddr,
              std::dec, " (kernel/device region)");

    const auto pte_paddr = pteAddr(req.asid, req.vaddr);
    if (!pte_paddr) {
        ++faults_;
        noteBudgetFault(req.asid);
        pageIn(ctl, req.asid, vpnOf(req.vaddr), std::move(retry));
        return;
    }
    // Read the PTE coherently (a cache may hold the page-table page
    // dirty; main memory can be stale).
    ctl.readWord(
        kernelAsid, kvaOf(*pte_paddr), true,
        [this, &ctl, req, retry = std::move(retry)](std::uint32_t raw) {
            const Pte pte{raw};
            if (pte.valid()) {
                // Valid mapping but insufficient permission: a genuine
                // protection violation (no copy-on-write here).
                fatal("protection violation: asid ",
                      unsigned{req.asid},
                      (req.write ? " write" : " read"), " at 0x",
                      std::hex, req.vaddr);
            }
            ++faults_;
            noteBudgetFault(req.asid);
            VMP_DTRACE(debug::Vm, events_.now(), "fault asid=",
                       unsigned{req.asid}, " va=0x", std::hex,
                       req.vaddr, std::dec);
            pageIn(ctl, req.asid, vpnOf(req.vaddr), retry);
        });
}

void
VmSystem::pageIn(proto::CacheController &ctl, Asid asid,
                 std::uint64_t vpn, Done done)
{
    const auto go = [this, &ctl, asid, vpn,
                     done = std::move(done)](std::uint32_t frame) {
        // Tier transfer (or zero-fill) into the frame; the host-side
        // copy bypasses the bus model (unless the tier has a DMA
        // engine attached) and is bracketed by the pageout/flush
        // protocol that guarantees no cached copies of a free frame
        // exist.
        const Addr base = static_cast<Addr>(frame) * vmPageBytes;
        tier_.fetchPage(
            asid, vpn, base,
            [this, &ctl, asid, vpn, frame, base,
             done](const std::vector<std::uint8_t> *image) {
                if (image) {
                    memory_.initBlock(base, image->data(),
                                      vmPageBytes);
                } else {
                    memory_.zeroInit(base, vmPageBytes);
                }
                ++pageIns_;
                mapPage(ctl, asid, vpn * vmPageBytes, frame, true,
                        true, true, done);
            });
    };

    const auto frame = allocator_.alloc();
    if (frame) {
        go(*frame);
        return;
    }
    // Memory pressure: run pageout, then retry the allocation. The
    // wait here is the miss-path eviction stall bench_memtier gates
    // on — with the async tier it ends at arena accept, not at
    // backend write-back.
    const Tick stall_start = events_.now();
    pageOutUntilTarget(ctl, [this, go, stall_start] {
        evictionStallNs_ +=
            static_cast<double>(events_.now() - stall_start);
        ++stalledPageIns_;
        const auto frame = allocator_.alloc();
        if (!frame)
            fatal("out of memory: pageout reclaimed nothing");
        go(*frame);
    });
}

void
VmSystem::writePte(proto::CacheController &ctl, Addr pte_paddr,
                   Pte pte, Done done)
{
    // The cached supervisor write acquires exclusive ownership of the
    // PTE's cache page — the "read-private on pt" of Section 3.4.
    ctl.writeWord(kernelAsid, kvaOf(pte_paddr), pte.raw, true,
                  std::move(done));
}

void
VmSystem::flushVmFrame(proto::CacheController &ctl,
                       std::uint32_t frame, Done done)
{
    const std::uint32_t cache_page = memory_.pageBytes();
    const Addr base = static_cast<Addr>(frame) * vmPageBytes;
    const std::uint32_t count = vmPageBytes / cache_page;

    auto index = std::make_shared<std::uint32_t>(0);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &ctl, base, cache_page, count, index, step,
             done = std::move(done)] {
        if (*index >= count) {
            breakLoop(events_, step);
            done();
            return;
        }
        const Addr paddr = base + (*index)++ * cache_page;
        // assert-ownership forces every other cache to discard or
        // write back its copy; our own copy (possibly dirty) is
        // flushed through the cache-control interface; then the
        // temporary Protect entry is released.
        ctl.assertOwnership(paddr, [this, &ctl, paddr, step] {
            ctl.flushFrame(paddr, [&ctl, paddr, step] {
                ctl.releaseProtection(paddr, *step);
            });
        });
    };
    (*step)();
}

void
VmSystem::mapPage(proto::CacheController &ctl, Asid asid, Addr vaddr,
                  std::uint32_t frame, bool user_read, bool user_write,
                  bool sup_write, Done done)
{
    ensurePtPage(asid, vaddr);
    const Addr pte_paddr = *pteAddr(asid, vaddr);
    const std::uint64_t vpn = vpnOf(vaddr);
    const Pte new_pte = Pte::make(frame, user_read, user_write,
                                  sup_write);

    ctl.readWord(
        kernelAsid, kvaOf(pte_paddr), true,
        [this, &ctl, asid, vpn, pte_paddr, new_pte, frame,
         done = std::move(done)](std::uint32_t raw) {
            const Pte old{raw};
            const auto finish = [this, &ctl, asid, vpn, pte_paddr,
                                 new_pte, frame, done] {
                writePte(ctl, pte_paddr, new_pte,
                         [this, asid, vpn, frame, done] {
                             resident_.push_back(
                                 ResidentPage{asid, vpn, frame});
                             noteBudgetUse(asid, +1);
                             ++mapOps_;
                             done();
                         });
            };
            if (old.valid()) {
                // Remapping: flush the old page's cache frames from
                // every cache before the translation changes.
                for (auto it = resident_.begin();
                     it != resident_.end(); ++it) {
                    if (it->asid == asid && it->vpn == vpn) {
                        resident_.erase(it);
                        noteBudgetUse(asid, -1);
                        break;
                    }
                }
                flushVmFrame(ctl, old.frame(), finish);
            } else {
                finish();
            }
        });
}

void
VmSystem::unmapPage(
    proto::CacheController &ctl, Asid asid, Addr vaddr,
    std::function<void(std::optional<std::uint32_t>)> done)
{
    const auto pte_paddr = pteAddr(asid, vaddr);
    if (!pte_paddr) {
        done(std::nullopt);
        return;
    }
    const std::uint64_t vpn = vpnOf(vaddr);
    ctl.readWord(
        kernelAsid, kvaOf(*pte_paddr), true,
        [this, &ctl, asid, vpn, pte_paddr = *pte_paddr,
         done = std::move(done)](std::uint32_t raw) {
            const Pte old{raw};
            if (!old.valid()) {
                done(std::nullopt);
                return;
            }
            for (auto it = resident_.begin(); it != resident_.end();
                 ++it) {
                if (it->asid == asid && it->vpn == vpn) {
                    resident_.erase(it);
                    noteBudgetUse(asid, -1);
                    break;
                }
            }
            flushVmFrame(ctl, old.frame(), [this, &ctl, pte_paddr,
                                            old, done] {
                writePte(ctl, pte_paddr, Pte{},
                         [old, done] { done(old.frame()); });
            });
        });
}

void
VmSystem::setPrivateHint(proto::CacheController &ctl, Asid asid,
                         Addr vaddr, Done done)
{
    const auto pte_paddr = pteAddr(asid, vaddr);
    if (!pte_paddr)
        fatal("setPrivateHint: no page-table page for 0x", std::hex,
              vaddr);
    ctl.readWord(
        kernelAsid, kvaOf(*pte_paddr), true,
        [this, &ctl, pte_paddr = *pte_paddr,
         done = std::move(done)](std::uint32_t raw) {
            Pte pte{raw};
            if (!pte.valid())
                fatal("setPrivateHint on an invalid mapping");
            pte.setPrivateHint();
            writePte(ctl, pte_paddr, pte, done);
        });
}

void
VmSystem::destroySpace(proto::CacheController &ctl, Asid asid,
                       Done done)
{
    // Collect the space's resident pages up front; unmapPage edits the
    // resident list as we go.
    auto victims = std::make_shared<std::deque<ResidentPage>>();
    for (const auto &page : resident_) {
        if (page.asid == asid)
            victims->push_back(page);
    }

    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &ctl, asid, victims, step, done = std::move(done)] {
        if (victims->empty()) {
            // Release the page-table pages and disk images.
            auto &root = space(asid).root;
            for (const auto &[dir, frame] : root)
                allocator_.free(frame);
            root.clear();
            spaces_.erase(asid);
            tier_.dropSpace(asid);
            breakLoop(events_, step);
            done();
            return;
        }
        const ResidentPage page = victims->front();
        victims->pop_front();
        unmapPage(ctl, asid, page.vpn * vmPageBytes,
                  [this, step](std::optional<std::uint32_t> frame) {
                      if (frame)
                          allocator_.free(*frame);
                      (*step)();
                  });
    };
    (*step)();
}

void
VmSystem::evictPage(proto::CacheController &ctl,
                    const ResidentPage &page, Addr pte_paddr,
                    std::function<void(bool)> done)
{
    // Evict: flush all caches, then save to the tier and invalidate.
    flushVmFrame(ctl, page.frame, [this, &ctl, page, pte_paddr,
                                   done = std::move(done)] {
        const Addr base = static_cast<Addr>(page.frame) * vmPageBytes;
        std::vector<std::uint8_t> image(vmPageBytes);
        memory_.readBlock(base, image.data(), vmPageBytes);
        tier_.storePage(
            page.asid, page.vpn, base, std::move(image),
            [this, &ctl, page, pte_paddr, done] {
                writePte(ctl, pte_paddr, Pte{},
                         [this, page, done] {
                             allocator_.free(page.frame);
                             ++pageOuts_;
                             noteBudgetUse(page.asid, -1);
                             VMP_DTRACE(debug::Vm, events_.now(),
                                        "pageout asid=",
                                        unsigned{page.asid},
                                        " vpn=", page.vpn,
                                        " frame=", page.frame);
                             done(true);
                         });
            });
    });
}

void
VmSystem::pageOutOne(proto::CacheController &ctl,
                     std::function<void(bool)> done)
{
    // Budget arbitration: prefer victims of spaces running over their
    // controller grant, bypassing the second chance — the grant says
    // the space must shed pages now.
    if (budget_ != nullptr) {
        for (auto it = resident_.begin(); it != resident_.end();
             ++it) {
            const auto client = budgetClient_.find(it->asid);
            if (client == budgetClient_.end() ||
                !budget_->overGrant(client->second))
                continue;
            const ResidentPage page = *it;
            const auto pte_paddr =
                pteAddr(page.asid, page.vpn * vmPageBytes);
            if (!pte_paddr)
                continue;
            resident_.erase(it);
            evictPage(ctl, page, *pte_paddr, std::move(done));
            return;
        }
    }

    // Clock algorithm over the resident list: skip-and-clear
    // referenced pages for at most two sweeps, then give up.
    auto scanned = std::make_shared<std::size_t>(0);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &ctl, scanned, step, done = std::move(done)] {
        if (resident_.empty() || *scanned >= 2 * resident_.size()) {
            breakLoop(events_, step);
            done(false);
            return;
        }
        ++*scanned;
        const ResidentPage page = resident_.front();
        resident_.pop_front();
        const auto pte_paddr =
            pteAddr(page.asid, page.vpn * vmPageBytes);
        if (!pte_paddr) {
            // Should not happen; treat as already gone.
            (*step)();
            return;
        }
        ctl.readWord(
            kernelAsid, kvaOf(*pte_paddr), true,
            [this, &ctl, page, pte_paddr = *pte_paddr, step,
             done](std::uint32_t raw) {
                Pte pte{raw};
                if (!pte.valid()) {
                    (*step)();
                    return;
                }
                if (pte.referenced()) {
                    // Second chance: clear the bit, move to the back.
                    pte.clearReferenced();
                    resident_.push_back(page);
                    writePte(ctl, pte_paddr, pte, *step);
                    return;
                }
                evictPage(ctl, page, pte_paddr,
                          [this, step, done](bool evicted) {
                              breakLoop(events_, step);
                              done(evicted);
                          });
            });
    };
    (*step)();
}

void
VmSystem::pageOutUntilTarget(proto::CacheController &ctl, Done done)
{
    auto loop = std::make_shared<std::function<void()>>();
    *loop = [this, &ctl, loop, done = std::move(done)] {
        if (allocator_.freeFrames() >= cfg_.freeTarget) {
            breakLoop(events_, loop);
            done();
            return;
        }
        pageOutOne(ctl, [this, loop, done](bool evicted) {
            if (!evicted) {
                breakLoop(events_, loop);
                done();
                return;
            }
            (*loop)();
        });
    };
    (*loop)();
}

std::uint32_t
VmSystem::budgetClientOf(Asid asid)
{
    const auto it = budgetClient_.find(asid);
    if (it != budgetClient_.end())
        return it->second;
    const auto id =
        budget_->addClient("asid" + std::to_string(asid));
    budgetClient_[asid] = id;
    return id;
}

void
VmSystem::noteBudgetFault(Asid asid)
{
    if (budget_ != nullptr)
        budget_->noteFault(budgetClientOf(asid));
}

void
VmSystem::noteBudgetUse(Asid asid, std::int32_t delta)
{
    if (budget_ != nullptr)
        budget_->noteUse(budgetClientOf(asid), delta);
}

void
VmSystem::registerStats(StatGroup &group) const
{
    group.addCounter("page_faults", "translation faults taken",
                     faults_);
    group.addCounter("page_ins", "pages brought in from the store",
                     pageIns_);
    group.addCounter("page_outs", "pages evicted to the store",
                     pageOuts_);
    group.addCounter("map_ops", "pmap map operations", mapOps_);
    group.addCounter("stalled_page_ins",
                     "page-ins that waited on eviction",
                     stalledPageIns_);
    group.addScalar("eviction_stall_ns",
                    "total ns the miss path waited on eviction",
                    evictionStallNs_);
}

} // namespace vmp::vm
