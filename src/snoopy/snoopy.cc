#include "snoopy/snoopy.hh"

#include <sstream>

#include "sim/logging.hh"
#include "trace/synthetic.hh"

namespace vmp::snoopy
{

const char *
protocolName(Protocol protocol)
{
    switch (protocol) {
      case Protocol::WriteInvalidate: return "write-invalidate";
      case Protocol::WriteUpdate: return "write-update";
      case Protocol::WriteOnce: return "write-once";
    }
    return "?";
}

void
SnoopyConfig::check() const
{
    if (!isPowerOf2(lineBytes) || lineBytes < 4 || lineBytes > 4096)
        fatal("snoopy: line size must be a power of two in [4, 4096]");
    if (ways == 0 || ways > 16)
        fatal("snoopy: associativity must be in [1, 16]");
    if (cacheBytes % (static_cast<std::uint64_t>(lineBytes) * ways) !=
        0)
        fatal("snoopy: cache size not divisible into ways of lines");
    if (processors == 0 || processors > 64)
        fatal("snoopy: processors must be in [1, 64]");
}

std::string
SnoopyResult::toString() const
{
    std::ostringstream os;
    os << "refs=" << refs << " miss%=" << missRatio() * 100
       << " inval=" << invalidations << " upd=" << updatesBroadcast
       << " wt=" << writeThroughs << " wb=" << writeBacks
       << " busNs/ref=" << busNsPerRef() << " snoops=" << snoopProbes;
    return os.str();
}

SnoopySystem::SnoopySystem(const SnoopyConfig &config)
    : cfg_(config),
      translator_(config.memBytes, config.lineBytes, trace::kernelBase,
                  trace::userBase)
{
    cfg_.check();
    sets_ = static_cast<std::uint32_t>(
        cfg_.cacheBytes / (static_cast<std::uint64_t>(cfg_.lineBytes) *
                           cfg_.ways));
    if (!isPowerOf2(sets_))
        fatal("snoopy: set count must be a power of two, got ", sets_);
    caches_.resize(cfg_.processors);
    for (auto &cache : caches_)
        cache.lines.assign(static_cast<std::size_t>(sets_) * cfg_.ways,
                           Line{});
}

std::uint64_t
SnoopySystem::lineOf(Addr paddr) const
{
    return paddr / cfg_.lineBytes;
}

std::uint32_t
SnoopySystem::setOf(std::uint64_t line) const
{
    return static_cast<std::uint32_t>(line % sets_);
}

SnoopySystem::Line &
SnoopySystem::lineAt(std::uint32_t cpu, std::uint32_t set,
                     std::uint32_t way)
{
    return caches_[cpu].lines[static_cast<std::size_t>(set) *
                                  cfg_.ways +
                              way];
}

int
SnoopySystem::findWay(std::uint32_t cpu, std::uint64_t line) const
{
    const std::uint32_t set = setOf(line);
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const Line &l =
            caches_[cpu].lines[static_cast<std::size_t>(set) *
                                   cfg_.ways +
                               way];
        if (l.state != LineState::Invalid && l.tag == line)
            return static_cast<int>(way);
    }
    return -1;
}

std::uint32_t
SnoopySystem::victimWay(std::uint32_t cpu, std::uint32_t set) const
{
    std::uint32_t victim = 0;
    std::uint64_t oldest = UINT64_MAX;
    for (std::uint32_t way = 0; way < cfg_.ways; ++way) {
        const Line &l =
            caches_[cpu].lines[static_cast<std::size_t>(set) *
                                   cfg_.ways +
                               way];
        if (l.state == LineState::Invalid)
            return way;
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = way;
        }
    }
    return victim;
}

void
SnoopySystem::busTransaction(std::uint32_t cpu, Tick ns)
{
    result_.busTicks += ns;
    // Every other cache's tag array is interrogated — the dual-ported
    // tag / processor-interference cost of a snoopy design.
    result_.snoopProbes += cfg_.processors - 1;
    (void)cpu;
}

void
SnoopySystem::step(std::uint32_t cpu, const trace::MemRef &ref)
{
    if (cpu >= cfg_.processors)
        panic("snoopy: cpu ", cpu, " out of range");
    ++result_.refs;

    // Per-reference translation (the MMU/TLB in front of a physically
    // addressed cache); assumed free here, which favours the baseline.
    proto::TranslateRequest req;
    req.asid = ref.asid;
    req.vaddr = ref.vaddr;
    req.write = ref.isWrite();
    req.supervisor = ref.supervisor;
    const auto translated = translator_.translateNow(req);
    const std::uint64_t line = lineOf(translated.paddr);
    const std::uint32_t set = setOf(line);
    const bool write = ref.isWrite();
    const Tick line_ns = cfg_.busTiming.blockNs(cfg_.lineBytes);
    const Tick word_ns = cfg_.busTiming.blockNs(4);
    const Tick short_ns = cfg_.busTiming.shortTxNs;

    int way = findWay(cpu, line);

    if (way < 0) {
        // Miss: fetch the line; a Modified copy elsewhere is flushed
        // first (one extra line transfer).
        ++result_.misses;
        for (std::uint32_t other = 0; other < cfg_.processors;
             ++other) {
            if (other == cpu)
                continue;
            const int oway = findWay(other, line);
            if (oway < 0)
                continue;
            Line &ol = lineAt(other, setOf(line), oway);
            if (ol.state == LineState::Modified) {
                busTransaction(other, line_ns);
                ++result_.writeBacks;
            }
            if (write && (cfg_.protocol == Protocol::WriteInvalidate ||
                          cfg_.protocol == Protocol::WriteOnce)) {
                ol.state = LineState::Invalid;
                ++result_.invalidations;
            } else {
                ol.state = LineState::Shared;
            }
        }

        const std::uint32_t victim = victimWay(cpu, set);
        Line &mine = lineAt(cpu, set, victim);
        if (mine.state == LineState::Modified) {
            busTransaction(cpu, line_ns);
            ++result_.writeBacks;
        }
        busTransaction(cpu, line_ns);
        mine.tag = line;
        mine.lastUse = useClock_++;
        switch (cfg_.protocol) {
          case Protocol::WriteInvalidate:
            mine.state = write ? LineState::Modified
                               : LineState::Shared;
            break;
          case Protocol::WriteUpdate:
            mine.state = LineState::Shared;
            if (write) {
                // Update protocol: the write itself is broadcast.
                busTransaction(cpu, word_ns);
                ++result_.updatesBroadcast;
            }
            break;
          case Protocol::WriteOnce:
            // Goodman: the first write writes the word through to
            // memory (making our copy Reserved: exclusive + clean).
            mine.state = LineState::Shared;
            if (write) {
                busTransaction(cpu, word_ns);
                ++result_.writeThroughs;
                mine.state = LineState::Reserved;
            }
            break;
        }
        way = static_cast<int>(victim);
        return;
    }

    Line &mine = lineAt(cpu, set, static_cast<std::uint32_t>(way));
    mine.lastUse = useClock_++;
    if (!write)
        return;

    switch (cfg_.protocol) {
      case Protocol::WriteInvalidate:
        if (mine.state == LineState::Shared) {
            // Invalidate other copies with one bus transaction.
            busTransaction(cpu, short_ns);
            for (std::uint32_t other = 0; other < cfg_.processors;
                 ++other) {
                if (other == cpu)
                    continue;
                const int oway = findWay(other, line);
                if (oway >= 0) {
                    lineAt(other, setOf(line),
                           static_cast<std::uint32_t>(oway))
                        .state = LineState::Invalid;
                    ++result_.invalidations;
                }
            }
        }
        mine.state = LineState::Modified;
        break;

      case Protocol::WriteUpdate:
        // Every write to a (potentially) shared line goes on the bus
        // at word granularity — the property that precludes large
        // cache pages (Section 6).
        busTransaction(cpu, word_ns);
        ++result_.updatesBroadcast;
        for (std::uint32_t other = 0; other < cfg_.processors;
             ++other) {
            if (other == cpu)
                continue;
            const int oway = findWay(other, line);
            if (oway >= 0)
                lineAt(other, setOf(line),
                       static_cast<std::uint32_t>(oway))
                    .lastUse = useClock_;
        }
        mine.state = LineState::Shared;
        break;

      case Protocol::WriteOnce:
        switch (mine.state) {
          case LineState::Shared:
            // First write: through to memory, invalidating sharers.
            busTransaction(cpu, word_ns);
            ++result_.writeThroughs;
            for (std::uint32_t other = 0; other < cfg_.processors;
                 ++other) {
                if (other == cpu)
                    continue;
                const int oway = findWay(other, line);
                if (oway >= 0) {
                    lineAt(other, setOf(line),
                           static_cast<std::uint32_t>(oway))
                        .state = LineState::Invalid;
                    ++result_.invalidations;
                }
            }
            mine.state = LineState::Reserved;
            break;
          case LineState::Reserved:
            // Second write: local only, line becomes dirty.
            mine.state = LineState::Modified;
            break;
          case LineState::Modified:
            break;
          case LineState::Invalid:
            break;
        }
        break;
    }
}

SnoopyResult
SnoopySystem::run(const std::vector<trace::RefSource *> &sources)
{
    if (sources.size() > cfg_.processors)
        fatal("snoopy: more traces than processors");
    std::vector<bool> live(sources.size(), true);
    bool any = !sources.empty();
    trace::MemRef ref;
    while (any) {
        any = false;
        for (std::size_t cpu = 0; cpu < sources.size(); ++cpu) {
            if (!live[cpu])
                continue;
            if (!sources[cpu]->next(ref)) {
                live[cpu] = false;
                continue;
            }
            step(static_cast<std::uint32_t>(cpu), ref);
            any = true;
        }
    }
    return result_;
}

} // namespace vmp::snoopy
