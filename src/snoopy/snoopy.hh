/**
 * @file
 * Snoopy-cache baseline for the Section 6 comparison. The paper argues
 * that write-broadcast/snoopy schemes need small line sizes, per-
 * reference snooping of every cache's tags, and a physically addressed
 * (or reverse-translated) cache; VMP trades a longer miss for drastic
 * hardware simplification. This module implements the comparators:
 *
 *  - a write-invalidate protocol (MSI: Invalid / Shared / Modified),
 *  - a write-update (broadcast) protocol, where every write to a
 *    potentially shared line broadcasts the word on the bus,
 *
 * over physically addressed caches with conventional (16-64 byte)
 * lines, driven by the same traces as the VMP model. The evaluation is
 * functional with bus-cost accounting (occupancy, transaction and
 * snoop-probe counts) — enough to regenerate the bus-traffic and
 * tag-port-pressure comparison.
 */

#ifndef VMP_SNOOPY_SNOOPY_HH
#define VMP_SNOOPY_SNOOPY_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/vme_bus.hh"
#include "proto/translator.hh"
#include "sim/stats.hh"
#include "trace/ref.hh"

namespace vmp::snoopy
{

/** Baseline protocol flavour. */
enum class Protocol : std::uint8_t
{
    WriteInvalidate, //!< MSI: invalidate sharers on write
    WriteUpdate,     //!< broadcast each shared write on the bus
    WriteOnce,       //!< Goodman[12]: first write writes through,
                     //!< later writes stay local (Reserved/Dirty)
};

const char *protocolName(Protocol protocol);

/** Configuration of the snoopy baseline machine. */
struct SnoopyConfig
{
    Protocol protocol = Protocol::WriteInvalidate;
    /** Line size in bytes (conventional: 16-64). */
    std::uint32_t lineBytes = 32;
    /** Total cache bytes per processor. */
    std::uint64_t cacheBytes = 256 * 1024;
    /** Associativity. */
    std::uint32_t ways = 4;
    /** Number of processors. */
    std::uint32_t processors = 1;
    /** Physical memory backing the traces. */
    std::uint64_t memBytes = 8ull << 20;
    /** Bus timing shared with the VMP model. */
    mem::BusTiming busTiming{};

    void check() const;
};

/** Aggregate results of a snoopy run. */
struct SnoopyResult
{
    std::uint64_t refs = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t updatesBroadcast = 0;
    std::uint64_t writeThroughs = 0;
    std::uint64_t writeBacks = 0;
    /** Total bus occupancy in ns. */
    Tick busTicks = 0;
    /**
     * Tag-array probes induced by the bus ("snoops"): every bus
     * transaction interrogates every other cache's tags — the
     * processor/cache-bandwidth cost the paper's bus monitor avoids.
     */
    std::uint64_t snoopProbes = 0;

    double
    missRatio() const
    {
        return refs == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(refs);
    }

    /** Mean bus nanoseconds consumed per reference. */
    double
    busNsPerRef() const
    {
        return refs == 0
            ? 0.0
            : static_cast<double>(busTicks) /
                static_cast<double>(refs);
    }

    std::string toString() const;
};

/**
 * The snoopy multiprocessor. Physically addressed: references are
 * translated up front through a DemandTranslator (per-reference
 * translation hardware — the MMU/TLB that VMP deliberately omits).
 */
class SnoopySystem
{
  public:
    explicit SnoopySystem(const SnoopyConfig &config);

    /**
     * Run one reference stream per processor, interleaving round-robin
     * (one reference per processor per turn), until all streams are
     * exhausted.
     */
    SnoopyResult run(const std::vector<trace::RefSource *> &sources);

    /** Present a single reference from processor @p cpu. */
    void step(std::uint32_t cpu, const trace::MemRef &ref);

    const SnoopyResult &result() const { return result_; }
    const SnoopyConfig &config() const { return cfg_; }

  private:
    /** Per-line state. */
    enum class LineState : std::uint8_t
    {
        Invalid,
        Shared,
        Reserved, //!< write-once: exclusive and clean (memory current)
        Modified,
    };

    struct Line
    {
        std::uint64_t tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    struct CacheArray
    {
        std::vector<Line> lines; // sets * ways
    };

    std::uint64_t lineOf(Addr paddr) const;
    std::uint32_t setOf(std::uint64_t line) const;
    /** Find the way holding @p line in @p cpu's cache, or -1. */
    int findWay(std::uint32_t cpu, std::uint64_t line) const;
    Line &lineAt(std::uint32_t cpu, std::uint32_t set,
                 std::uint32_t way);
    /** Victim way (LRU) in @p set of @p cpu. */
    std::uint32_t victimWay(std::uint32_t cpu, std::uint32_t set) const;
    /** Account a bus transaction of @p ns; all other caches snoop. */
    void busTransaction(std::uint32_t cpu, Tick ns);

    SnoopyConfig cfg_;
    std::uint32_t sets_;
    std::vector<CacheArray> caches_;
    proto::DemandTranslator translator_;
    std::uint64_t useClock_ = 1;
    SnoopyResult result_;
};

} // namespace vmp::snoopy

#endif // VMP_SNOOPY_SNOOPY_HH
