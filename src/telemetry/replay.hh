/**
 * @file
 * Trace-driven replay: reconstruct per-frame ownership history from a
 * streamed (or post-hoc) Chrome-trace event file.
 *
 * The ownership protocol leaves a complete audit trail on the bus
 * tracks: a completed (non-aborted) ReadPrivate or AssertOwnership by
 * master M over frame F makes M the exclusive (Protect) owner of F; a
 * completed WriteBack by the owner releases F back to memory; a
 * Reclaim broadcast force-clears a dead board's ownership during
 * recovery. Folding the BusTx spans and Reclaim instants of a trace
 * in completion order therefore answers the torture-debugging
 * question directly: who owned frame F at time T, and through which
 * Protect/Reclaim chain did it get there — no VMP_DEBUG=Proto
 * spelunking required.
 *
 * Input is tolerant: a cleanly closed stream, writeChromeTrace()
 * output, or a mid-run truncated stream (recovered via
 * StreamingSink::recoverTruncated) all load. In hierarchical traces
 * each bus track describes ownership at its own level (cluster-local
 * vs global); use the track filter to scope queries to one domain.
 */

#ifndef VMP_TELEMETRY_REPLAY_HH
#define VMP_TELEMETRY_REPLAY_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "mem/bus_types.hh"
#include "sim/types.hh"

namespace vmp::telemetry
{

/** One ownership-relevant bus record, reconstructed from the trace. */
struct OwnershipEvent
{
    /** Transaction completion tick (span end), ns. */
    Tick atNs = 0;
    /** Transaction start tick, ns (== atNs for instants). */
    Tick startNs = 0;
    /** Page-aligned physical address (the frame). */
    std::uint64_t addr = 0;
    /** Issuing master (board id; recovery coordinator for Reclaim). */
    std::uint32_t master = 0;
    mem::TxType tx = mem::TxType::ReadShared;
    bool aborted = false;
    std::uint16_t track = 0;
    std::string trackName;

    /** Completion makes `master` the exclusive owner. */
    bool acquiresOwnership() const;
    /** Completion releases (or force-clears) ownership. */
    bool releasesOwnership() const;
    std::string toString() const;
};

/** Query filters; unset fields match everything. */
struct ReplayFilter
{
    std::optional<std::uint64_t> frame;
    std::optional<std::uint32_t> board;
    std::optional<std::string> track;
    std::optional<Tick> fromNs;
    std::optional<Tick> toNs;

    bool matches(const OwnershipEvent &event) const;
};

/** Who owned a frame at a probed time. */
struct OwnerVerdict
{
    /** False: memory was the authority (no Protect owner). */
    bool owned = false;
    std::uint32_t board = 0;
    /** Completion tick of the acquiring transaction. */
    Tick sinceNs = 0;
    /** Protect/Reclaim transitions for the frame up to the probe. */
    std::vector<OwnershipEvent> chain;

    std::string toString() const;
};

/** A loaded trace, indexed for ownership queries. */
class ReplaySession
{
  public:
    /** Load a Chrome-trace document; throws FatalError on malformed
     *  input that truncation recovery cannot repair. */
    static ReplaySession fromText(const std::string &text);
    static ReplaySession fromStream(std::istream &is);

    /** All ownership-relevant records, completion-time order. */
    const std::vector<OwnershipEvent> &events() const
    {
        return events_;
    }

    /** Records matching @p filter, completion-time order. */
    std::vector<OwnershipEvent>
    history(const ReplayFilter &filter) const;

    /**
     * Owner of the frame containing @p addr at tick @p at_ns, with
     * the full Protect/Reclaim chain leading there. @p track scopes
     * the query to one bus domain (hier traces); empty = all tracks.
     */
    OwnerVerdict ownerAt(std::uint64_t addr, Tick at_ns,
                         const std::string &track = "") const;

    /** Chrome-trace records ingested (all kinds, pre-filter). */
    std::size_t rawRecords() const { return rawRecords_; }
    /** Track id -> name map from the trace metadata. */
    const std::vector<std::string> &trackNames() const
    {
        return trackNames_;
    }

  private:
    std::vector<OwnershipEvent> events_;
    std::vector<std::string> trackNames_;
    std::size_t rawRecords_ = 0;
};

} // namespace vmp::telemetry

#endif // VMP_TELEMETRY_REPLAY_HH
