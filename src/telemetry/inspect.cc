/**
 * @file
 * Live-inspection collectors. Every document is deterministic for a
 * given machine state: slots scan in index order, action tables in
 * frame order, FIFOs oldest-first; no hash-map iteration leaks in.
 */

#include "telemetry/inspect.hh"

#include <string>

#include "backing/budget.hh"
#include "backing/frame_arena.hh"
#include "backing/memory_tier.hh"
#include "cache/cache.hh"
#include "core/hier_system.hh"
#include "core/system.hh"
#include "hier/inter_bus_board.hh"
#include "monitor/action_table.hh"
#include "monitor/interrupt_fifo.hh"
#include "recover/recovery.hh"

namespace vmp::telemetry
{

Json
inspectCache(const cache::Cache &cache)
{
    const cache::CacheConfig &cfg = cache.config();
    Json doc = Json::object();
    doc["geometry"] = Json(cfg.toString());
    doc["valid_slots"] = Json(std::uint64_t{cache.validCount()});
    Json slots = Json::array();
    const std::uint64_t total = cfg.totalSlots();
    for (std::uint64_t i = 0; i < total; ++i) {
        const cache::Slot &slot =
            cache.slot(static_cast<cache::SlotIndex>(i));
        if (!slot.valid())
            continue;
        Json entry = Json::object();
        entry["slot"] = Json(i);
        entry["set"] = Json(i / cfg.ways);
        entry["way"] = Json(i % cfg.ways);
        entry["asid"] = Json(std::uint64_t{slot.tag.asid});
        entry["vpn"] = Json(slot.tag.vpn);
        entry["flags"] = Json(cache::flagsToString(slot.flags));
        entry["modified"] = Json(slot.modified());
        entry["exclusive"] = Json(slot.exclusive());
        slots.push(std::move(entry));
    }
    doc["slots"] = std::move(slots);
    return doc;
}

Json
inspectActionTable(const monitor::ActionTable &table)
{
    Json doc = Json::object();
    doc["frames"] = Json(table.frames());
    doc["storage_bytes"] = Json(table.storageBytes());
    Json entries = Json::array();
    for (const std::uint64_t frame : table.nonIgnoredFrames()) {
        Json entry = Json::object();
        entry["frame"] = Json(frame);
        entry["entry"] =
            Json(mem::actionEntryName(table.get(frame)));
        entries.push(std::move(entry));
    }
    doc["entries"] = std::move(entries);
    return doc;
}

Json
inspectFifo(const monitor::InterruptFifo &fifo)
{
    Json doc = Json::object();
    doc["depth"] = Json(std::uint64_t{fifo.size()});
    doc["capacity"] = Json(std::uint64_t{fifo.capacity()});
    doc["overflowed"] = Json(fifo.overflowed());
    doc["pushed"] = Json(fifo.pushed().value());
    doc["dropped"] = Json(fifo.dropped().value());
    Json words = Json::array();
    for (const monitor::InterruptWord &word : fifo.words()) {
        Json w = Json::object();
        w["type"] = Json(mem::txTypeName(word.type));
        w["paddr"] = Json(word.paddr);
        w["requester"] = Json(std::uint64_t{word.requester});
        w["aborted"] = Json(word.aborted);
        words.push(std::move(w));
    }
    doc["words"] = std::move(words);
    return doc;
}

Json
inspectBoard(const core::ProcessorBoard &board)
{
    Json doc = Json::object();
    doc["cpu"] = Json(std::uint64_t{board.controller.cpuId()});
    Json controller = Json::object();
    controller["dead"] = Json(board.controller.dead());
    controller["wedged"] = Json(board.controller.wedged());
    controller["misses"] = Json(board.controller.misses().value());
    controller["ownership_misses"] =
        Json(board.controller.ownershipMisses().value());
    controller["retries"] = Json(board.controller.retries().value());
    controller["write_backs"] =
        Json(board.controller.writeBacks().value());
    controller["words_serviced"] =
        Json(board.controller.wordsServiced().value());
    controller["frames_tracked"] =
        Json(std::uint64_t{board.controller.frameTable().size()});
    doc["controller"] = std::move(controller);
    Json mon = Json::object();
    mon["masked"] = Json(board.monitor.masked());
    mon["table_stuck"] = Json(board.monitor.tableStuck());
    mon["interrupts"] = Json(board.monitor.interrupts().value());
    mon["aborts_issued"] =
        Json(board.monitor.abortsIssued().value());
    doc["monitor"] = std::move(mon);
    doc["action_table"] = inspectActionTable(board.monitor.table());
    doc["fifo"] = inspectFifo(board.monitor.fifo());
    doc["cache"] = inspectCache(board.cache);
    return doc;
}

Json
inspectRecovery(const recover::RecoveryManager &recovery)
{
    Json doc = Json::object();
    doc["boards_dead"] = Json(recovery.deadBoards());
    doc["boards_fenced"] = Json(recovery.fencedBoards());
    doc["recovering"] = Json(recovery.recovering());
    doc["frames_reclaimed"] =
        Json(recovery.framesReclaimed().value());
    doc["pages_lost"] = Json(recovery.pagesLost().value());
    doc["pages_restored"] = Json(recovery.pagesRestored().value());
    doc["recoveries_completed"] =
        Json(recovery.recoveriesCompleted().value());
    doc["last_recovery_ns"] = Json(recovery.lastRecoveryNs());
    return doc;
}

Json
inspectBudget(const backing::BudgetController &budget)
{
    Json doc = Json::object();
    doc["epochs"] = Json(budget.epochs().value());
    doc["grant_changes"] = Json(budget.grantChanges().value());
    doc["shrinks"] = Json(budget.shrinks().value());
    doc["running"] = Json(budget.running());
    Json clients = Json::array();
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(budget.clientCount()); ++c) {
        Json client = Json::object();
        client["name"] = Json(budget.clientName(c));
        client["grant"] = Json(std::uint64_t{budget.grantOf(c)});
        client["used"] = Json(std::uint64_t{budget.usedOf(c)});
        client["over_grant"] = Json(budget.overGrant(c));
        clients.push(std::move(client));
    }
    doc["clients"] = std::move(clients);
    return doc;
}

Json
inspectTier(const backing::MemoryTier &tier)
{
    Json doc = Json::object();
    if (const backing::FrameArena *arena = tier.arena()) {
        Json a = Json::object();
        a["capacity"] = Json(std::uint64_t{arena->capacity()});
        a["used"] = Json(std::uint64_t{arena->used()});
        a["dirty"] = Json(std::uint64_t{arena->dirtyCount()});
        a["peak_used"] = Json(std::uint64_t{arena->peakUsed()});
        a["drain_queue_depth"] =
            Json(std::uint64_t{arena->drainQueueDepth()});
        doc["arena"] = std::move(a);
    }
    doc["pending_stores"] = Json(std::uint64_t{tier.pendingStores()});
    doc["arena_hits"] = Json(tier.arenaHits().value());
    doc["backend_fetches"] = Json(tier.backendFetches().value());
    doc["stores_accepted"] = Json(tier.storesAccepted().value());
    doc["store_stalls"] = Json(tier.storeStalls().value());
    doc["pages_drained"] = Json(tier.pagesDrained().value());
    return doc;
}

Json
inspectSystem(const core::VmpSystem &system)
{
    Json doc = Json::object();
    doc["t_ns"] = Json(system.events().now());
    doc["processors"] = Json(std::uint64_t{system.processors()});
    Json bus = Json::object();
    bus["utilization"] = Json(system.bus().utilization());
    bus["busy"] = Json(system.bus().busy());
    bus["fenced_drops"] = Json(system.bus().fencedDrops().value());
    doc["bus"] = std::move(bus);
    Json boards = Json::array();
    for (std::size_t i = 0; i < system.processors(); ++i)
        boards.push(inspectBoard(system.board(i)));
    doc["boards"] = std::move(boards);
    if (const recover::RecoveryManager *recovery =
            system.recoveryManager())
        doc["recovery"] = inspectRecovery(*recovery);
    if (const obs::EventTracer *tracer = system.tracer()) {
        Json trace = Json::object();
        trace["tracks"] = Json(std::uint64_t{tracer->trackCount()});
        trace["events_recorded"] = Json(tracer->recorded());
        trace["events_overwritten"] = Json(tracer->droppedOldest());
        doc["trace"] = std::move(trace);
    }
    return doc;
}

Json
inspectSystem(const core::HierVmpSystem &system)
{
    Json doc = Json::object();
    doc["t_ns"] = Json(system.events().now());
    doc["clusters"] = Json(std::uint64_t{system.clusters()});
    doc["cpus_per_cluster"] =
        Json(std::uint64_t{system.cpusPerCluster()});
    Json global_bus = Json::object();
    global_bus["utilization"] =
        Json(system.globalBus().utilization());
    doc["global_bus"] = std::move(global_bus);
    Json clusters = Json::array();
    for (std::size_t k = 0; k < system.clusters(); ++k) {
        Json cluster = Json::object();
        cluster["bus_utilization"] =
            Json(system.localBus(k).utilization());
        const hier::InterBusBoard &ibc = system.interBusBoard(k);
        Json ibc_doc = Json::object();
        ibc_doc["idle"] = Json(ibc.idle());
        ibc_doc["dead"] = Json(ibc.dead());
        ibc_doc["wedged"] = Json(ibc.wedged());
        ibc_doc["service_epoch"] = Json(ibc.serviceEpoch());
        ibc_doc["pending_words"] =
            Json(std::uint64_t{ibc.pendingWords()});
        ibc_doc["global_action_table"] =
            inspectActionTable(ibc.globalMonitor().table());
        ibc_doc["global_fifo"] =
            inspectFifo(ibc.globalMonitor().fifo());
        cluster["ibc"] = std::move(ibc_doc);
        Json boards = Json::array();
        for (std::size_t i = 0; i < system.cpusPerCluster(); ++i) {
            boards.push(inspectBoard(
                system.board(k * system.cpusPerCluster() + i)));
        }
        cluster["boards"] = std::move(boards);
        if (system.recoveryEnabled()) {
            cluster["recovery"] =
                inspectRecovery(system.clusterRecovery(k));
        }
        clusters.push(std::move(cluster));
    }
    doc["cluster_state"] = std::move(clusters);
    if (system.recoveryEnabled())
        doc["global_recovery"] =
            inspectRecovery(*system.globalRecovery());
    if (const backing::BudgetController *budget =
            system.clusterBudget())
        doc["budget"] = inspectBudget(*budget);
    if (const obs::EventTracer *tracer = system.tracer()) {
        Json trace = Json::object();
        trace["tracks"] = Json(std::uint64_t{tracer->trackCount()});
        trace["events_recorded"] = Json(tracer->recorded());
        trace["events_overwritten"] = Json(tracer->droppedOldest());
        doc["trace"] = std::move(trace);
    }
    return doc;
}

} // namespace vmp::telemetry
