/**
 * @file
 * ReplaySession: fold a Chrome-trace event file back into per-frame
 * ownership history.
 */

#include "telemetry/replay.hh"

#include <algorithm>
#include <cmath>
#include <istream>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "telemetry/streaming_sink.hh"

namespace vmp::telemetry
{

namespace
{

Tick
nsFromUsec(double usec)
{
    return static_cast<Tick>(std::llround(usec * 1000.0));
}

} // namespace

bool
OwnershipEvent::acquiresOwnership() const
{
    return !aborted && (tx == mem::TxType::ReadPrivate ||
                        tx == mem::TxType::AssertOwnership);
}

bool
OwnershipEvent::releasesOwnership() const
{
    return !aborted && (tx == mem::TxType::WriteBack ||
                        tx == mem::TxType::Reclaim);
}

std::string
OwnershipEvent::toString() const
{
    std::ostringstream os;
    os << "t=" << atNs << "ns";
    if (!trackName.empty())
        os << " [" << trackName << "]";
    os << " master=" << master << " " << mem::txTypeName(tx)
       << " addr=0x" << std::hex << addr << std::dec;
    if (aborted)
        os << " (aborted)";
    else if (acquiresOwnership())
        os << " (acquires Protect)";
    else if (releasesOwnership())
        os << " (releases)";
    return os.str();
}

bool
ReplayFilter::matches(const OwnershipEvent &event) const
{
    if (frame && event.addr != *frame)
        return false;
    if (board && event.master != *board)
        return false;
    if (track && event.trackName != *track)
        return false;
    if (fromNs && event.atNs < *fromNs)
        return false;
    if (toNs && event.atNs > *toNs)
        return false;
    return true;
}

std::string
OwnerVerdict::toString() const
{
    std::ostringstream os;
    if (owned) {
        os << "owned Protect by board " << board << " since "
           << sinceNs << "ns";
    } else {
        os << "unowned (memory authoritative)";
    }
    os << "; chain of " << chain.size() << " transition(s)";
    return os.str();
}

ReplaySession
ReplaySession::fromText(const std::string &text)
{
    const Json doc =
        Json::parse(StreamingSink::recoverTruncated(text));
    const Json &records = doc.get("traceEvents");
    ReplaySession session;
    session.rawRecords_ = records.size();
    for (const Json &record : records.items()) {
        const std::string &ph = record.get("ph").asString();
        const std::uint16_t tid = static_cast<std::uint16_t>(
            record.get("tid").asUint());
        if (ph == "M") {
            if (record.get("name").asString() != "thread_name")
                continue;
            if (tid >= session.trackNames_.size())
                session.trackNames_.resize(tid + 1);
            session.trackNames_[tid] =
                record.get("args").get("name").asString();
            continue;
        }
        const std::string &name = record.get("name").asString();
        const bool bus_tx = ph == "X" && name == "bus_tx";
        const bool reclaim = ph == "i" && name == "reclaim";
        if (!bus_tx && !reclaim)
            continue;
        const Json &args = record.get("args");
        OwnershipEvent event;
        event.track = tid;
        event.startNs = nsFromUsec(record.get("ts").asNumber());
        event.addr = args.get("addr").asUint();
        event.master =
            static_cast<std::uint32_t>(args.get("master").asUint());
        if (bus_tx) {
            event.atNs =
                event.startNs +
                nsFromUsec(record.get("dur").asNumber());
            const std::uint64_t tx = args.get("tx_type").asUint();
            if (tx >= mem::kTxTypes)
                continue; // unknown vocabulary; skip, don't guess
            event.tx = static_cast<mem::TxType>(tx);
            event.aborted = args.get("aborted").asBool();
        } else {
            event.atNs = event.startNs;
            event.tx = mem::TxType::Reclaim;
        }
        session.events_.push_back(std::move(event));
    }
    std::stable_sort(session.events_.begin(), session.events_.end(),
                     [](const OwnershipEvent &a,
                        const OwnershipEvent &b) {
                         return a.atNs < b.atNs;
                     });
    for (OwnershipEvent &event : session.events_) {
        if (event.track < session.trackNames_.size())
            event.trackName = session.trackNames_[event.track];
    }
    return session;
}

ReplaySession
ReplaySession::fromStream(std::istream &is)
{
    std::ostringstream text;
    text << is.rdbuf();
    return fromText(text.str());
}

std::vector<OwnershipEvent>
ReplaySession::history(const ReplayFilter &filter) const
{
    std::vector<OwnershipEvent> out;
    for (const OwnershipEvent &event : events_) {
        if (filter.matches(event))
            out.push_back(event);
    }
    return out;
}

OwnerVerdict
ReplaySession::ownerAt(std::uint64_t addr, Tick at_ns,
                       const std::string &track) const
{
    OwnerVerdict verdict;
    for (const OwnershipEvent &event : events_) {
        if (event.atNs > at_ns)
            break;
        if (event.addr != addr)
            continue;
        if (!track.empty() && event.trackName != track)
            continue;
        if (event.acquiresOwnership()) {
            verdict.owned = true;
            verdict.board = event.master;
            verdict.sinceNs = event.atNs;
            verdict.chain.push_back(event);
        } else if (event.releasesOwnership()) {
            // WriteBack by the owner or a recovery Reclaim: memory
            // becomes authoritative again. (A WriteBack while we
            // believe the frame unowned is table drift — recorded in
            // the chain so the archaeology is visible.)
            verdict.owned = false;
            verdict.chain.push_back(event);
        }
    }
    return verdict;
}

} // namespace vmp::telemetry
