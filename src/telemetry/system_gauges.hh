/**
 * @file
 * Live-gauge wiring: collect instantaneous metrics from a whole
 * system (bus utilization, interrupt-FIFO depths, recovery fencing
 * counters, budget grants, arena occupancy) into an obs::GaugeSet,
 * and register the same collection as a StreamingSink gauge provider
 * so every flush boundary carries a rolled-up snapshot.
 *
 * This is the seam that surfaces the PR-7/8 subsystems mid-run:
 * BudgetController grants and FrameArena occupancy (the far-memory
 * tier) and RecoveryManager fencing counters previously appeared only
 * in the end-of-run stat groups; collectGauges() samples them at any
 * instant and obs::metricsSnapshot(tracer, profiler, &gauges) renders
 * them alongside the trace totals.
 *
 * All collectors are observation-only: const references, no events
 * scheduled, no RNG drawn.
 */

#ifndef VMP_TELEMETRY_SYSTEM_GAUGES_HH
#define VMP_TELEMETRY_SYSTEM_GAUGES_HH

#include "obs/gauges.hh"
#include "telemetry/streaming_sink.hh"

namespace vmp::backing
{
class BudgetController;
class MemoryTier;
} // namespace vmp::backing

namespace vmp::recover
{
class RecoveryManager;
} // namespace vmp::recover

namespace vmp::core
{
class VmpSystem;
class HierVmpSystem;
} // namespace vmp::core

namespace vmp::telemetry
{

/** Bus utilization, per-board FIFO depth/drops, and — when installed
 *  — recovery fencing counters of a flat system. */
obs::GaugeSet collectGauges(const core::VmpSystem &system);

/** Global + per-cluster bus utilization, IBC queue depths, per-CPU
 *  FIFO depths, recovery fencing counters at both levels, and budget
 *  grants/occupancy when a cluster budget is installed. */
obs::GaugeSet collectGauges(const core::HierVmpSystem &system);

/** Append one "budget" group: per-client grant/used plus epochs. */
void addBudgetGauges(obs::GaugeSet &set,
                     const backing::BudgetController &budget);

/** Append one @p group group of fencing/reclaim counters. */
void addRecoveryGauges(obs::GaugeSet &set, const std::string &group,
                       const recover::RecoveryManager &recovery);

/** Append one "tier" group: arena occupancy, drain queue, stalls. */
void addTierGauges(obs::GaugeSet &set,
                   const backing::MemoryTier &tier);

/** Register collectGauges(system) as a sink gauge provider. */
void attachSystemGauges(StreamingSink &sink,
                        const core::VmpSystem &system);
void attachSystemGauges(StreamingSink &sink,
                        const core::HierVmpSystem &system);

} // namespace vmp::telemetry

#endif // VMP_TELEMETRY_SYSTEM_GAUGES_HH
