/**
 * @file
 * Live-gauge collectors over VmpSystem / HierVmpSystem.
 */

#include "telemetry/system_gauges.hh"

#include "backing/budget.hh"
#include "backing/frame_arena.hh"
#include "backing/memory_tier.hh"
#include "core/hier_system.hh"
#include "core/system.hh"
#include "recover/recovery.hh"

namespace vmp::telemetry
{

namespace
{

void
addFifoGauges(obs::GaugeSet &set, const std::string &group,
              const monitor::InterruptFifo &fifo)
{
    set.add(group, "fifo_depth", static_cast<double>(fifo.size()));
    set.add(group, "fifo_dropped",
            static_cast<double>(fifo.dropped().value()));
}

} // namespace

void
addRecoveryGauges(obs::GaugeSet &set, const std::string &group,
                  const recover::RecoveryManager &recovery)
{
    set.add(group, "boards_dead",
            static_cast<double>(recovery.deadBoards()));
    set.add(group, "boards_fenced",
            static_cast<double>(recovery.fencedBoards()));
    set.add(group, "fences_total",
            static_cast<double>(recovery.boardsFenced().value()));
    set.add(group, "unfences_total",
            static_cast<double>(recovery.boardsUnfenced().value()));
    set.add(group, "frames_reclaimed",
            static_cast<double>(recovery.framesReclaimed().value()));
    set.add(group, "recovering", recovery.recovering() ? 1.0 : 0.0);
}

void
addBudgetGauges(obs::GaugeSet &set,
                const backing::BudgetController &budget)
{
    set.add("budget", "clients",
            static_cast<double>(budget.clientCount()));
    set.add("budget", "epochs",
            static_cast<double>(budget.epochs().value()));
    set.add("budget", "grant_changes",
            static_cast<double>(budget.grantChanges().value()));
    for (std::uint32_t c = 0;
         c < static_cast<std::uint32_t>(budget.clientCount()); ++c) {
        const std::string &name = budget.clientName(c);
        set.add("budget", name + "_grant",
                static_cast<double>(budget.grantOf(c)));
        set.add("budget", name + "_used",
                static_cast<double>(budget.usedOf(c)));
    }
}

void
addTierGauges(obs::GaugeSet &set, const backing::MemoryTier &tier)
{
    if (const backing::FrameArena *arena = tier.arena()) {
        set.add("tier", "arena_used",
                static_cast<double>(arena->used()));
        set.add("tier", "arena_capacity",
                static_cast<double>(arena->capacity()));
        set.add("tier", "arena_dirty",
                static_cast<double>(arena->dirtyCount()));
        set.add("tier", "arena_peak_used",
                static_cast<double>(arena->peakUsed()));
        set.add("tier", "drain_queue_depth",
                static_cast<double>(arena->drainQueueDepth()));
    }
    set.add("tier", "pending_stores",
            static_cast<double>(tier.pendingStores()));
    set.add("tier", "store_stalls",
            static_cast<double>(tier.storeStalls().value()));
    set.add("tier", "pages_drained",
            static_cast<double>(tier.pagesDrained().value()));
}

obs::GaugeSet
collectGauges(const core::VmpSystem &system)
{
    obs::GaugeSet set;
    set.add("bus", "utilization", system.bus().utilization());
    set.add("bus", "fenced_drops",
            static_cast<double>(system.bus().fencedDrops().value()));
    for (std::size_t i = 0; i < system.processors(); ++i) {
        addFifoGauges(set, "cpu" + std::to_string(i),
                      system.board(i).monitor.fifo());
    }
    if (const recover::RecoveryManager *recovery =
            system.recoveryManager())
        addRecoveryGauges(set, "recover", *recovery);
    return set;
}

obs::GaugeSet
collectGauges(const core::HierVmpSystem &system)
{
    obs::GaugeSet set;
    set.add("global_bus", "utilization",
            system.globalBus().utilization());
    for (std::size_t k = 0; k < system.clusters(); ++k) {
        const std::string cluster = "c" + std::to_string(k);
        set.add(cluster + ".bus", "utilization",
                system.localBus(k).utilization());
        set.add(cluster + ".ibc", "pending_words",
                static_cast<double>(
                    system.interBusBoard(k).pendingWords()));
    }
    for (std::size_t i = 0; i < system.totalCpus(); ++i) {
        addFifoGauges(set, "cpu" + std::to_string(i),
                      system.board(i).monitor.fifo());
    }
    if (system.recoveryEnabled()) {
        for (std::size_t k = 0; k < system.clusters(); ++k) {
            addRecoveryGauges(set, "c" + std::to_string(k) +
                                       ".recover",
                              system.clusterRecovery(k));
        }
        addRecoveryGauges(set, "global.recover",
                          *system.globalRecovery());
    }
    if (const backing::BudgetController *budget =
            system.clusterBudget())
        addBudgetGauges(set, *budget);
    return set;
}

void
attachSystemGauges(StreamingSink &sink,
                   const core::VmpSystem &system)
{
    sink.addGaugeProvider([&system](obs::GaugeSet &set) {
        const obs::GaugeSet live = collectGauges(system);
        for (const obs::GaugeGroup &group : live.groups()) {
            for (const obs::Gauge &gauge : group.gauges)
                set.add(group.name, gauge.name, gauge.value);
        }
    });
}

void
attachSystemGauges(StreamingSink &sink,
                   const core::HierVmpSystem &system)
{
    sink.addGaugeProvider([&system](obs::GaugeSet &set) {
        const obs::GaugeSet live = collectGauges(system);
        for (const obs::GaugeGroup &group : live.groups()) {
            for (const obs::Gauge &gauge : group.gauges)
                set.add(group.name, gauge.name, gauge.value);
        }
    });
}

} // namespace vmp::telemetry
