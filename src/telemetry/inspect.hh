/**
 * @file
 * Live inspection mode: on-demand snapshots of the machine's hidden
 * hardware state — cache tag arrays, bus-monitor action tables,
 * interrupt-FIFO contents, controller bookkeeping, recovery and
 * tier/budget state — serialized through sim/json.hh.
 *
 * In the spirit of live cache inspection (arXiv 2007.12271): the
 * simulated VMP hardware state that normally stays invisible behind
 * aggregate counters is dumped as a structured document a debugger or
 * the vmp_replay tool can cross-check against the event stream.
 *
 * Consistency points: every collector only *reads* component state
 * (const references, no events scheduled, no RNG), but the snapshot
 * is only transactionally meaningful at quiescent points — between
 * runs, after EventQueue::run() returns, or from a callback scheduled
 * by the caller. Mid-event the machine is mid-transition (a miss
 * handler may hold a frame half-filled) and the snapshot faithfully
 * shows that in-flight state.
 */

#ifndef VMP_TELEMETRY_INSPECT_HH
#define VMP_TELEMETRY_INSPECT_HH

#include "sim/json.hh"

namespace vmp::cache
{
class Cache;
} // namespace vmp::cache

namespace vmp::monitor
{
class ActionTable;
class InterruptFifo;
} // namespace vmp::monitor

namespace vmp::backing
{
class BudgetController;
class MemoryTier;
} // namespace vmp::backing

namespace vmp::recover
{
class RecoveryManager;
} // namespace vmp::recover

namespace vmp::core
{
struct ProcessorBoard;
class VmpSystem;
class HierVmpSystem;
} // namespace vmp::core

namespace vmp::telemetry
{

/** Valid slots of one cache: set/way, <asid, vpn> tag, flags. */
Json inspectCache(const cache::Cache &cache);

/** Non-ignored action-table entries: frame, entry name. */
Json inspectActionTable(const monitor::ActionTable &table);

/** FIFO occupancy plus every queued word (type, paddr, requester). */
Json inspectFifo(const monitor::InterruptFifo &fifo);

/** One processor board: cache + monitor (table, fifo) + controller. */
Json inspectBoard(const core::ProcessorBoard &board);

/** Recovery coordinator: dead/fenced boards, reclaim progress. */
Json inspectRecovery(const recover::RecoveryManager &recovery);

/** Budget controller: per-client grant/used, epoch counters. */
Json inspectBudget(const backing::BudgetController &budget);

/** Memory tier: arena occupancy, drain queue, transfer counters. */
Json inspectTier(const backing::MemoryTier &tier);

/**
 * Whole flat machine at the current tick: bus state, every board,
 * and recovery state when installed. The document round-trips
 * through Json::parse (used by tests and the live_inspect example).
 */
Json inspectSystem(const core::VmpSystem &system);

/** Whole two-level machine: global bus, clusters (bus + inter-bus
 *  board + boards), recovery at both levels, budget when armed. */
Json inspectSystem(const core::HierVmpSystem &system);

} // namespace vmp::telemetry

#endif // VMP_TELEMETRY_INSPECT_HH
