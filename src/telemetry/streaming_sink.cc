/**
 * @file
 * StreamingSink implementation. Hot path (onEvent) is a bounds check
 * plus a push_back into reserved staging storage; all serialization
 * and I/O happens at flush boundaries.
 */

#include "telemetry/streaming_sink.hh"

#include <charconv>
#include <cstring>
#include <ostream>

#include "obs/export.hh"
#include "obs/miss_profiler.hh"
#include "sim/logging.hh"

namespace vmp::telemetry
{

namespace
{

/** Copy a string literal without a runtime strlen. */
#define VMP_LIT(p, s)                                                 \
    (std::memcpy(p, s, sizeof(s) - 1), (p) += sizeof(s) - 1)

inline char *
putUint(char *p, std::uint64_t v)
{
    return std::to_chars(p, p + 20, v).ptr;
}

/**
 * Nanoseconds as a microsecond decimal. Three exact fractional digits
 * parse back to the same double that obs::chromeTraceEvent computes
 * as ns / 1000.0: both IEEE division and decimal parsing round
 * correctly to the nearest representable value.
 */
inline char *
putUsec(char *p, std::uint64_t ns)
{
    p = putUint(p, ns / 1000);
    const unsigned frac = static_cast<unsigned>(ns % 1000);
    if (frac != 0) {
        *p++ = '.';
        *p++ = static_cast<char>('0' + frac / 100);
        *p++ = static_cast<char>('0' + frac / 10 % 10);
        *p++ = static_cast<char>('0' + frac % 10);
    }
    return p;
}

inline char *
putBool(char *p, bool v)
{
    if (v)
        VMP_LIT(p, "true");
    else
        VMP_LIT(p, "false");
    return p;
}

inline char *
putName(char *p, const char *s)
{
    while (*s != '\0')
        *p++ = *s++;
    return p;
}

/** Upper bound on one serialized record (fixed text + name + eight
 *  20-digit numbers, with headroom). */
constexpr std::size_t kMaxRecordBytes = 384;

/**
 * Serialize one Chrome-trace record into @p p (caller guarantees
 * kMaxRecordBytes of room) and return the end pointer. Field set,
 * key order and values mirror obs::chromeTraceEvent exactly (key
 * order matters: Json objects keep insertion order through a
 * parse/dump round trip); the streamed-vs-post-hoc equivalence tests
 * in test_telemetry hold the two serializers in lockstep
 * record-for-record. All name strings come from fixed identifier
 * tables, so no escaping is needed.
 */
char *
putRecord(char *p, const obs::TraceEvent &event)
{
    using obs::EventKind;
    VMP_LIT(p, "{\"name\":\"");
    if (obs::isSpan(event.kind)) {
        p = putName(p,
                    event.kind == EventKind::MissPhase
                        ? obs::missPhaseName(
                              static_cast<obs::MissPhase>(event.aux))
                        : obs::eventKindName(event.kind));
        VMP_LIT(p, "\",\"ph\":\"X\",\"pid\":0,\"tid\":");
        p = putUint(p, event.track);
        VMP_LIT(p, ",\"ts\":");
        p = putUsec(p, event.at);
        VMP_LIT(p, ",\"dur\":");
        p = putUsec(p, event.arg0);
        VMP_LIT(p, ",\"args\":{");
        switch (event.kind) {
          case EventKind::BusTx:
          case EventKind::Copy:
            VMP_LIT(p, "\"addr\":");
            p = putUint(p, event.addr);
            VMP_LIT(p, ",\"tx_type\":");
            p = putUint(p, event.aux & 0x7fu);
            VMP_LIT(p, ",\"aborted\":");
            p = putBool(p, (event.aux & 0x80u) != 0);
            VMP_LIT(p, ",\"master\":");
            p = putUint(p, event.master);
            if (event.kind == EventKind::BusTx)
                VMP_LIT(p, ",\"queue_delay_ns\":");
            else
                VMP_LIT(p, ",\"bus_time_ns\":");
            p = putUint(p, event.arg1);
            break;
          case EventKind::Miss:
            VMP_LIT(p, "\"addr\":");
            p = putUint(p, event.addr);
            VMP_LIT(p, ",\"dirty\":");
            p = putBool(p, (event.aux & 1u) != 0);
            VMP_LIT(p, ",\"kind\":\"");
            p = putName(p, obs::missKindName(
                               static_cast<obs::MissKind>(
                                   event.aux >> 1)));
            VMP_LIT(p, "\",\"retries\":");
            p = putUint(p, event.arg1);
            break;
          case EventKind::Service:
            VMP_LIT(p, "\"words\":");
            p = putUint(p, event.arg1);
            break;
          case EventKind::IbcFetch:
            VMP_LIT(p, "\"addr\":");
            p = putUint(p, event.addr);
            VMP_LIT(p, ",\"exclusive\":");
            p = putBool(p, (event.aux & 1u) != 0);
            VMP_LIT(p, ",\"upgrade\":");
            p = putBool(p, (event.aux & 2u) != 0);
            break;
          case EventKind::Recovery:
            VMP_LIT(p, "\"dead_board\":");
            p = putUint(p, event.master);
            break;
          default:
            break;
        }
        VMP_LIT(p, "}}");
        return p;
    }
    if (event.kind == EventKind::FifoDepth) {
        VMP_LIT(p, "fifo_depth\",\"ph\":\"C\",\"pid\":0,\"tid\":");
        p = putUint(p, event.track);
        VMP_LIT(p, ",\"ts\":");
        p = putUsec(p, event.at);
        VMP_LIT(p, ",\"args\":{\"depth\":");
        p = putUint(p, event.arg0);
        VMP_LIT(p, "}}");
        return p;
    }
    p = putName(p, obs::eventKindName(event.kind));
    VMP_LIT(p, "\",\"ph\":\"i\",\"pid\":0,\"tid\":");
    p = putUint(p, event.track);
    VMP_LIT(p, ",\"ts\":");
    p = putUsec(p, event.at);
    VMP_LIT(p, ",\"s\":\"t\",\"args\":{\"addr\":");
    p = putUint(p, event.addr);
    VMP_LIT(p, ",\"master\":");
    p = putUint(p, event.master);
    VMP_LIT(p, "}}");
    return p;
}

#undef VMP_LIT

} // namespace

StreamingSink::StreamingSink(std::ostream &events_out,
                             StreamConfig config)
    : out_(events_out), cfg_(config),
      phaseEwmaNs_(obs::kMissPhases, -1.0)
{
    if (cfg_.stagingPerTrack == 0)
        cfg_.stagingPerTrack = 1;
    staging_.reserve(cfg_.flushThreshold + 64);
    wbuf_.reserve(cfg_.flushThreshold * 160 + 256);
}

void
StreamingSink::addGaugeProvider(GaugeProvider provider)
{
    providers_.push_back(std::move(provider));
}

void
StreamingSink::attach(obs::EventTracer &tracer,
                      const EventQueue &events)
{
    if (tracer_ != nullptr)
        panic("StreamingSink: attached twice");
    tracer_ = &tracer;
    events_ = &events;
    out_ << "{\"displayTimeUnit\": \"ns\", \"traceEvents\": [";
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(tracer.trackCount()); ++t)
        announceTrack(t);
    drainBuffer();
    out_.flush();
    tracer.addSink(
        [this](const obs::TraceEvent &event) { onEvent(event); });
}

void
StreamingSink::onEvent(const obs::TraceEvent &event)
{
    if (closed_)
        return;
    if (event.kind == obs::EventKind::MissPhase &&
        event.aux < obs::kMissPhases) {
        double &ewma = phaseEwmaNs_[event.aux];
        const double sample = static_cast<double>(event.arg0);
        ewma = ewma < 0.0 ? sample
                          : cfg_.ewmaAlpha * sample +
                                (1.0 - cfg_.ewmaAlpha) * ewma;
    }
    if (event.track >= stagedPerTrack_.size()) {
        stagedPerTrack_.resize(event.track + 1, 0);
        droppedPerTrack_.resize(event.track + 1, 0);
    }
    if (stagedPerTrack_[event.track] >= cfg_.stagingPerTrack) {
        // Consumer fell behind: bound the buffer, count the loss.
        ++droppedPerTrack_[event.track];
        ++dropped_;
        return;
    }
    staging_.push_back(event);
    ++stagedPerTrack_[event.track];
    if (cfg_.autoFlush && staging_.size() >= cfg_.flushThreshold)
        flush();
}

void
StreamingSink::writeEvent(const obs::TraceEvent &event)
{
    char buf[kMaxRecordBytes + 2];
    char *p = buf;
    if (wroteFirst_)
        *p++ = ',';
    *p++ = '\n';
    p = putRecord(p, event);
    wbuf_.append(buf, static_cast<std::size_t>(p - buf));
    wroteFirst_ = true;
}

void
StreamingSink::announceTrack(std::uint16_t track)
{
    if (track >= announced_.size())
        announced_.resize(track + 1, false);
    if (announced_[track])
        return;
    // Once per track: the Json slow path is fine here, and track
    // names are user strings that need real escaping.
    wbuf_.append(wroteFirst_ ? ",\n" : "\n", wroteFirst_ ? 2 : 1);
    wbuf_ += obs::chromeTrackMetadata(track,
                                      tracer_->trackName(track))
                 .dump(0);
    wroteFirst_ = true;
    announced_[track] = true;
}

void
StreamingSink::drainBuffer()
{
    if (wbuf_.empty())
        return;
    out_.write(wbuf_.data(),
               static_cast<std::streamsize>(wbuf_.size()));
    wbuf_.clear();
}

void
StreamingSink::flush()
{
    for (const obs::TraceEvent &event : staging_) {
        if (event.track >= announced_.size() ||
            !announced_[event.track])
            announceTrack(event.track);
        writeEvent(event);
        ++streamed_;
    }
    staging_.clear();
    stagedPerTrack_.assign(stagedPerTrack_.size(), 0);
    drainBuffer();
    out_.flush();
    ++flushes_;
    if (gauges_ != nullptr && events_ != nullptr) {
        Json line = Json::object();
        line["t_us"] =
            Json(static_cast<double>(events_->now()) / 1000.0);
        line["gauges"] = sampleGauges().toJson();
        *gauges_ << line.dump(0) << '\n';
        gauges_->flush();
        ++gaugeSamples_;
    }
}

void
StreamingSink::close()
{
    if (closed_)
        return;
    flush();
    if (tracer_ != nullptr) {
        for (std::uint16_t t = 0;
             t < static_cast<std::uint16_t>(tracer_->trackCount());
             ++t)
            announceTrack(t);
    }
    drainBuffer();
    out_ << "\n]}\n";
    out_.flush();
    closed_ = true;
}

obs::GaugeSet
StreamingSink::sampleGauges() const
{
    obs::GaugeSet set;
    set.add("sink", "events_streamed",
            static_cast<double>(streamed_.value()));
    set.add("sink", "events_staged",
            static_cast<double>(staging_.size()));
    set.add("sink", "events_dropped",
            static_cast<double>(dropped_.value()));
    set.add("sink", "flushes",
            static_cast<double>(flushes_.value()));
    for (std::size_t p = 0; p < phaseEwmaNs_.size(); ++p) {
        if (phaseEwmaNs_[p] < 0.0)
            continue;
        set.add("miss_ewma",
                std::string(obs::missPhaseName(
                    static_cast<obs::MissPhase>(p))) +
                    "_us",
                phaseEwmaNs_[p] / 1000.0);
    }
    for (const GaugeProvider &provider : providers_)
        provider(set);
    return set;
}

std::uint64_t
StreamingSink::droppedOn(std::uint16_t track) const
{
    return track < droppedPerTrack_.size() ? droppedPerTrack_[track]
                                           : 0;
}

void
StreamingSink::registerStats(StatGroup &group) const
{
    group.addCounter("stream_events", "events streamed to the sink",
                     streamed_);
    group.addCounter("stream_dropped",
                     "events dropped by sink backpressure", dropped_);
    group.addCounter("stream_flushes", "sink flush batches", flushes_);
    group.addCounter("stream_gauge_samples",
                     "gauge snapshots emitted", gaugeSamples_);
}

namespace
{

/** True when @p line is one complete JSON object (brace-balanced
 *  outside strings, ending exactly at depth zero). */
bool
completeObject(const std::string &line)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    bool opened = false;
    for (const char c : line) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (in_string) {
            if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{':
          case '[':
            ++depth;
            opened = true;
            break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            if (depth == 0 && c == ']')
                return false;
            break;
          default: break;
        }
    }
    return opened && depth == 0 && !in_string;
}

} // namespace

std::string
StreamingSink::recoverTruncated(std::string text)
{
    // Already a closed document? Balance the whole text so both the
    // sink's line-oriented form and a pretty-printed writeChromeTrace
    // file pass through unchanged.
    std::size_t end = text.find_last_not_of(" \t\r\n");
    if (end != std::string::npos && text[end] == '}' &&
        completeObject(text.substr(0, end + 1)))
        return text;
    // Cut inside the header (before the first record separator):
    // nothing recoverable was written — canonical empty document.
    if (text.find('\n') == std::string::npos)
        return "{\"displayTimeUnit\": \"ns\", \"traceEvents\": "
               "[\n]}\n";
    // Trim a partial trailing line: keep the last '\n'-terminated
    // prefix, then keep the final line only if it is one complete
    // record.
    const std::size_t nl = text.find_last_of('\n');
    if (nl != std::string::npos) {
        std::string tail = text.substr(nl + 1);
        // A record line may carry the *next* record's separator; a
        // flush boundary leaves no trailing comma.
        if (!completeObject(tail))
            text.erase(nl);
    }
    // Strip the separator left for a record that never arrived.
    end = text.find_last_not_of(" \t\r\n");
    if (end == std::string::npos)
        return text;
    if (text[end] == ',')
        text.erase(end);
    else
        text.erase(end + 1);
    text += "\n]}\n";
    return text;
}

} // namespace vmp::telemetry
