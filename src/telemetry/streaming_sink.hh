/**
 * @file
 * StreamingSink: live export of the observability event stream.
 *
 * PR 5's EventTracer is post-hoc and ring-capacity-bound: events that
 * scroll out of a track's ring before the run ends are gone. The
 * streaming sink rides the tracer's sink seam — sinks see every event
 * at record() time, *before* ring storage — so it observes the
 * complete stream regardless of ring capacity. Events are copied into
 * a bounded staging buffer on the simulation hot path (a push_back
 * into reserved storage, no I/O) and serialized out in batches at
 * flush boundaries, as incrementally-valid Chrome-trace JSON:
 *
 *   {"displayTimeUnit": "ns", "traceEvents": [
 *   {event},
 *   {event},
 *   ...
 *   ]}
 *
 * Every flush leaves the output at a line boundary, so a stream cut
 * off mid-run (crashed consumer, truncated file) is recovered by
 * recoverTruncated(): trim to the last complete line and close the
 * document. A cleanly close()d stream is a complete document that
 * parses to exactly the records obs::writeChromeTrace() would emit
 * for the same run, modulo order: the post-hoc exporter sorts by
 * (tick, track), the stream is in record order. The per-event
 * serializer is a hand-rolled appender (building a Json tree per
 * event costs ~20x the wall clock); obs::chromeTraceEvent remains
 * the vocabulary source of truth, and test_telemetry's
 * streamed-vs-post-hoc equivalence tests hold the two in lockstep
 * record-for-record.
 *
 * Backpressure: the staging buffer is bounded per track. When the
 * consumer falls behind — autoFlush disabled and flush() not called
 * often enough — events beyond a track's staging bound are *dropped
 * and counted* (droppedOn/registerStats), never queued unboundedly
 * and never blocking the simulation. With autoFlush on (the default)
 * staging drains synchronously before any bound is hit, so drop
 * counters stay zero.
 *
 * The sink is pure observation: it never schedules simulator events
 * and never draws from any Rng, so an attached sink leaves simulated
 * time bit-identical (host wall-clock is the only cost). Detached,
 * the tracer's sink fan-out loop is empty — the one-untaken-branch
 * contract of the null-tracer seam is unchanged.
 *
 * Rolled-up gauge snapshots (bus utilization, FIFO depths, miss-phase
 * EWMAs, arena occupancy, fencing counters, ...) are sampled at each
 * flush boundary into a side channel: one compact JSON object per
 * line (JSONL) on the optional gauge stream. Built-in gauges cover
 * the sink itself and the miss-phase EWMAs it folds from MissPhase
 * events; telemetry::attachSystemGauges() registers providers for a
 * whole system.
 */

#ifndef VMP_TELEMETRY_STREAMING_SINK_HH
#define VMP_TELEMETRY_STREAMING_SINK_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/event_tracer.hh"
#include "obs/gauges.hh"
#include "sim/event.hh"
#include "sim/stats.hh"

namespace vmp::telemetry
{

/** Streaming-sink tuning knobs. */
struct StreamConfig
{
    /** Staged-event bound per track; beyond it events are dropped
     *  (and counted) until the next flush. */
    std::size_t stagingPerTrack = 8192;
    /** Total staged events that trigger an automatic flush. */
    std::size_t flushThreshold = 2048;
    /** Flush automatically when flushThreshold is reached. Off, the
     *  consumer must call flush() itself — the backpressure/drop
     *  path, exercised by tests. */
    bool autoFlush = true;
    /** EWMA smoothing factor for the per-phase miss-time gauges. */
    double ewmaAlpha = 0.125;
};

/** Drains an EventTracer's sink seam to a Chrome-trace JSON stream. */
class StreamingSink
{
  public:
    /** Provider invoked at each gauge sample to append live values. */
    using GaugeProvider = std::function<void(obs::GaugeSet &)>;

    /**
     * @p events_out receives the Chrome-trace stream (file, socket
     * streambuf, stringstream — anything ostream). The sink must
     * outlive the tracer's recording; the stream must outlive the
     * sink.
     */
    explicit StreamingSink(std::ostream &events_out,
                           StreamConfig config = {});

    /** Gauge snapshots (JSONL) go to @p os; nullptr disables. */
    void setGaugeStream(std::ostream *os) { gauges_ = os; }

    /** Register a live-gauge provider (sampled at every flush). */
    void addGaugeProvider(GaugeProvider provider);

    /**
     * Attach to @p tracer: registers this sink and writes the stream
     * header plus thread-name metadata for every track registered so
     * far (tracks registered later are announced at close()).
     * @p events timestamps gauge snapshots. Attach at most once,
     * before any traffic.
     */
    void attach(obs::EventTracer &tracer, const EventQueue &events);

    /** Serialize and write everything staged, then sample gauges. */
    void flush();

    /**
     * Flush, announce any late-registered tracks, and terminate the
     * JSON document. The sink records (and drops) nothing afterwards.
     */
    void close();

    /** Sample every gauge (built-ins + providers) without flushing. */
    obs::GaugeSet sampleGauges() const;

    std::uint64_t eventsStreamed() const { return streamed_.value(); }
    std::uint64_t flushes() const { return flushes_.value(); }
    std::uint64_t droppedTotal() const { return dropped_.value(); }
    /** Events dropped on @p track because staging was full. */
    std::uint64_t droppedOn(std::uint16_t track) const;
    bool closed() const { return closed_; }

    /** Streaming counters into a stat group (system "obs" group). */
    void registerStats(StatGroup &group) const;

    /**
     * Make a truncated stream parseable: trim to the last complete
     * line, strip the trailing separator and close the document. A
     * complete document passes through unchanged. The result parses
     * as long as the stream reached its first flush boundary.
     */
    static std::string recoverTruncated(std::string text);

  private:
    void onEvent(const obs::TraceEvent &event);
    /** Append one record (separator included) to wbuf_. */
    void writeEvent(const obs::TraceEvent &event);
    /** Append a track's thread-name metadata record to wbuf_. */
    void announceTrack(std::uint16_t track);
    /** Drain wbuf_ to the output stream. */
    void drainBuffer();

    std::ostream &out_;
    std::ostream *gauges_ = nullptr;
    StreamConfig cfg_;
    obs::EventTracer *tracer_ = nullptr;
    const EventQueue *events_ = nullptr;

    /** Arrival-ordered staging; per-track counts enforce the bound. */
    std::vector<obs::TraceEvent> staging_;
    std::vector<std::size_t> stagedPerTrack_;
    std::vector<std::uint64_t> droppedPerTrack_;
    /** Tracks whose thread-name metadata has been written. */
    std::vector<bool> announced_;

    /** Serialization batch buffer: one write() per flush boundary. */
    std::string wbuf_;

    /** Per-phase EWMA of miss-phase duration, in ns (-1 = no sample). */
    std::vector<double> phaseEwmaNs_;

    std::vector<GaugeProvider> providers_;

    bool wroteFirst_ = false;
    bool closed_ = false;
    Counter streamed_;
    Counter dropped_;
    Counter flushes_;
    Counter gaugeSamples_;
};

} // namespace vmp::telemetry

#endif // VMP_TELEMETRY_STREAMING_SINK_HH
