/**
 * @file
 * EventTracer: per-track ring buffers of typed TraceEvents.
 *
 * Zero-cost-when-disabled contract (the mem::FaultHooks pattern):
 * every instrumented component holds a nullable `obs::EventTracer *`;
 * a null tracer costs one untaken branch per potential event and the
 * simulation is bit-identical to an uninstrumented build. A non-null
 * tracer only *observes* — record() never schedules simulator events,
 * never draws from any Rng, and never mutates component state — so
 * even an ENABLED tracer leaves simulated time bit-identical; the only
 * cost is host wall-clock.
 *
 * Each track (one per board, bus, or inter-bus board) owns a
 * lock-free single-writer ring: the simulator is single-threaded, so
 * "lock-free" here means index-arithmetic with no synchronization at
 * all — a plain power-of-two ring that overwrites the oldest record
 * when full and counts what it dropped. Sinks (e.g. the MissProfiler)
 * see every event at record() time, before ring storage, so folding
 * analyses are exact even when the raw ring has wrapped.
 *
 * Header-only: components in mem/monitor/proto emit events without
 * linking vmp_obs (which carries the profiler and exporters).
 */

#ifndef VMP_OBS_EVENT_TRACER_HH
#define VMP_OBS_EVENT_TRACER_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_event.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace vmp::obs
{

/** Tuning knobs for VmpSystem/HierVmpSystem::enableTracing(). */
struct TraceConfig
{
    /** Ring capacity per track, rounded up to a power of two. */
    std::size_t ringCapacity = std::size_t{1} << 15;
    /** Attach a MissProfiler sink folding per-miss phase breakdowns. */
    bool profileMisses = true;
};

/**
 * Collects TraceEvents into per-track rings and fans them out to
 * registered sinks. Tracks are registered up front by the system
 * wiring; track ids are dense and stable for the tracer's lifetime.
 */
class EventTracer
{
  public:
    using Sink = std::function<void(const TraceEvent &)>;

    explicit EventTracer(std::size_t ring_capacity = std::size_t{1}
                                                     << 15)
        : capacity_(roundUpPow2(ring_capacity))
    {
    }

    /**
     * Register a named track (e.g. "bus", "cpu3", "c1.ibc") and
     * return its dense id. Names must be unique.
     */
    std::uint16_t
    registerTrack(const std::string &name)
    {
        for (const auto &ring : rings_) {
            if (ring.name == name)
                panic("EventTracer: duplicate track \"", name, "\"");
        }
        if (rings_.size() >= 0xffff)
            panic("EventTracer: too many tracks");
        rings_.emplace_back(name, capacity_);
        return static_cast<std::uint16_t>(rings_.size() - 1);
    }

    /** Attach a sink invoked (in registration order) on every event
     *  before it is stored; sinks outlive recording. */
    void addSink(Sink sink) { sinks_.push_back(std::move(sink)); }

    /**
     * Record one event. Single-writer, no allocation after the ring
     * is built, no simulator side effects. The event's `track` field
     * must name a registered track.
     */
    void
    record(const TraceEvent &event)
    {
        for (const auto &sink : sinks_)
            sink(event);
        Ring &ring = rings_.at(event.track);
        ++recorded_;
        ++ring.recorded;
        if (ring.buf.size() < capacity_) {
            ring.buf.push_back(event);
            return;
        }
        // Overwrite-oldest: `next` is the logical start of the ring.
        ring.buf[ring.next] = event;
        ring.next = (ring.next + 1) & (capacity_ - 1);
        ring.wrapped = true;
        ++ring.dropped;
        ++dropped_;
    }

    std::size_t trackCount() const { return rings_.size(); }

    const std::string &
    trackName(std::uint16_t track) const
    {
        return rings_.at(track).name;
    }

    /** Events recorded on @p track, oldest first (ring unwound). */
    std::vector<TraceEvent>
    events(std::uint16_t track) const
    {
        const Ring &ring = rings_.at(track);
        if (!ring.wrapped)
            return ring.buf;
        std::vector<TraceEvent> out;
        out.reserve(ring.buf.size());
        for (std::size_t i = 0; i < ring.buf.size(); ++i) {
            out.push_back(
                ring.buf[(ring.next + i) & (capacity_ - 1)]);
        }
        return out;
    }

    /** All retained events across tracks, sorted by (at, track). */
    std::vector<TraceEvent>
    allEvents() const
    {
        std::vector<TraceEvent> out;
        for (std::uint16_t t = 0;
             t < static_cast<std::uint16_t>(rings_.size()); ++t) {
            const auto track_events = events(t);
            out.insert(out.end(), track_events.begin(),
                       track_events.end());
        }
        std::stable_sort(
            out.begin(), out.end(),
            [](const TraceEvent &a, const TraceEvent &b) {
                return a.at != b.at ? a.at < b.at
                                    : a.track < b.track;
            });
        return out;
    }

    std::uint64_t recorded() const { return recorded_.value(); }
    std::uint64_t droppedOldest() const { return dropped_.value(); }
    std::size_t ringCapacity() const { return capacity_; }

    /** Events dropped (overwritten) on one track. */
    std::uint64_t
    droppedOn(std::uint16_t track) const
    {
        return rings_.at(track).dropped.value();
    }

    void
    registerStats(StatGroup &group) const
    {
        group.addCounter("events_recorded",
                         "trace events recorded across all tracks",
                         recorded_);
        group.addCounter("events_overwritten",
                         "oldest events overwritten by ring wrap",
                         dropped_);
        // Per-track overwrite loss: sinks see every event before ring
        // storage, so overwrite only loses the *retained* copy — but
        // that is exactly what the post-hoc exporters read, so a
        // non-zero counter here means writeChromeTrace() is showing a
        // truncated track. Track names are sanitized ('.' -> '_') so
        // the flat "group.stat" dump format stays unambiguous.
        for (const Ring &ring : rings_) {
            group.addCounter("overwritten_" + statName(ring.name),
                             "events overwritten on track " +
                                 ring.name,
                             ring.dropped);
        }
    }

    /** Track name as a stat identifier ("c0.bus" -> "c0_bus"). */
    static std::string
    statName(const std::string &track_name)
    {
        std::string out = track_name;
        for (char &c : out) {
            if (c == '.')
                c = '_';
        }
        return out;
    }

  private:
    struct Ring
    {
        Ring(std::string ring_name, std::size_t capacity)
            : name(std::move(ring_name))
        {
            buf.reserve(capacity);
        }

        std::string name;
        std::vector<TraceEvent> buf;
        std::size_t next = 0;
        bool wrapped = false;
        Counter recorded;
        Counter dropped;
    };

    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p < 2 ? 2 : p;
    }

    std::size_t capacity_;
    std::vector<Ring> rings_;
    std::vector<Sink> sinks_;
    Counter recorded_;
    Counter dropped_;
};

} // namespace vmp::obs

#endif // VMP_OBS_EVENT_TRACER_HH
