/**
 * @file
 * MissProfiler: folds traced events into per-miss phase breakdowns.
 *
 * Attached as an EventTracer sink, the profiler watches each track's
 * MissPhase spans accumulate and, when the closing Miss span arrives,
 * folds the per-phase nanoseconds into a Breakdown keyed by
 * {miss kind, dirty victim}. Because the controller emits phases as a
 * gapless serial partition of the miss interval (the first phase opens
 * at the miss's start tick and each phase starts where the previous
 * ended), the per-miss phase sum equals the miss's elapsed time by
 * construction — any difference is a tracing bug and is counted in
 * phase_sum_mismatches. bench_obs cross-checks the resulting
 * clean/dirty full-miss breakdowns against the paper's Table 1/2
 * elapsed-time rows via analytic::MissCostModel.
 *
 * Sinks see events at record() time, before ring storage, so the
 * profiler's folds are exact even after the raw rings wrap.
 */

#ifndef VMP_OBS_MISS_PROFILER_HH
#define VMP_OBS_MISS_PROFILER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "obs/event_tracer.hh"
#include "obs/trace_event.hh"
#include "sim/json.hh"
#include "sim/stats.hh"

namespace vmp::obs
{

/** Miss kinds distinguished by the controller (Miss event aux>>1). */
enum class MissKind : std::uint8_t
{
    Full = 0,       ///< page absent from the cache
    Ownership = 1,  ///< present shared, write needs private
    Protection = 2, ///< user access to a supervisor-owned page
};

inline constexpr std::size_t kMissKinds = 3;

inline const char *
missKindName(MissKind kind)
{
    switch (kind) {
      case MissKind::Full: return "full";
      case MissKind::Ownership: return "ownership";
      case MissKind::Protection: return "protection";
    }
    return "unknown";
}

/** Aggregated phase decomposition for one {kind, dirty} miss class. */
struct MissBreakdown
{
    std::uint64_t count = 0;
    std::uint64_t elapsedNs = 0;
    std::uint64_t retries = 0;
    std::array<std::uint64_t, kMissPhases> phaseNs{};

    double
    meanElapsedUs() const
    {
        return count == 0
                   ? 0.0
                   : static_cast<double>(elapsedNs) /
                         static_cast<double>(count) / 1000.0;
    }

    double
    meanPhaseUs(MissPhase phase) const
    {
        return count == 0
                   ? 0.0
                   : static_cast<double>(
                         phaseNs[static_cast<std::size_t>(phase)]) /
                         static_cast<double>(count) / 1000.0;
    }

    /** Mean per-miss sum over all phases, in us. */
    double
    phaseSumUs() const
    {
        std::uint64_t sum = 0;
        for (const auto ns : phaseNs)
            sum += ns;
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count) / 1000.0;
    }
};

/**
 * Folds MissPhase/Miss trace events into MissBreakdowns. One
 * instance serves a whole tracer: per-track pending accumulators keep
 * concurrent misses on different boards separate.
 */
class MissProfiler
{
  public:
    /** Sink entry point; also callable directly in tests. */
    void observe(const TraceEvent &event);

    /** Adapter for EventTracer::addSink. */
    EventTracer::Sink
    sink()
    {
        return [this](const TraceEvent &event) { observe(event); };
    }

    const MissBreakdown &
    breakdown(MissKind kind, bool dirty) const
    {
        return classes_[classIndex(kind, dirty)];
    }

    /** Aggregate over every {kind, dirty} class. */
    MissBreakdown total() const;

    std::uint64_t misses() const { return misses_.value(); }

    /** Misses whose phase sum differed from their elapsed time. */
    std::uint64_t
    phaseSumMismatches() const
    {
        return mismatches_.value();
    }

    /** Largest per-miss |phase sum - elapsed| seen, in ns. */
    std::uint64_t worstMismatchNs() const { return worstMismatchNs_; }

    void registerStats(StatGroup &group) const;

    /** Full breakdown table (per class: count, elapsed, phases). */
    Json toJson() const;

  private:
    static std::size_t
    classIndex(MissKind kind, bool dirty)
    {
        return static_cast<std::size_t>(kind) * 2 + (dirty ? 1 : 0);
    }

    struct Pending
    {
        std::array<std::uint64_t, kMissPhases> phaseNs{};
    };

    std::array<MissBreakdown, kMissKinds * 2> classes_{};
    std::vector<Pending> pending_;
    Counter misses_;
    Counter mismatches_;
    std::uint64_t worstMismatchNs_ = 0;
};

} // namespace vmp::obs

#endif // VMP_OBS_MISS_PROFILER_HH
