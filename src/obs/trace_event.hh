/**
 * @file
 * Typed trace events for the observability subsystem.
 *
 * The vocabulary is deliberately small and flat: one POD struct whose
 * meaning depends on its @ref EventKind. Span-like kinds (BusTx, Miss,
 * MissPhase, Service, Copy, IbcFetch, Recovery, TierFetch, TierStore,
 * TierEvict) are emitted ONCE at the
 * END of the interval they describe, with @ref TraceEvent::at set to the
 * interval's start tick and @ref TraceEvent::arg0 to its duration in
 * ns. Emitting spans as completed intervals (rather than begin/end
 * pairs) means a wrapped ring buffer never contains a dangling begin,
 * and exporters never have to match pairs.
 *
 * This header depends only on sim/types.hh so that low-level components
 * (mem, monitor, proto) can emit events without linking against the
 * vmp_obs library — the same layering trick as mem::FaultHooks.
 */

#ifndef VMP_OBS_TRACE_EVENT_HH
#define VMP_OBS_TRACE_EVENT_HH

#include <cstdint>

#include "sim/types.hh"

namespace vmp::obs
{

/**
 * What one trace record describes. Kinds marked [span] carry a start
 * tick in `at` and a duration (ns) in `arg0`; kinds marked [instant]
 * are point events; [counter] kinds sample a value in `arg0`.
 */
enum class EventKind : std::uint8_t
{
    /** [span] One bus transaction: arg0 = bus occupancy ns, arg1 =
     *  queueing delay ns, aux = TxType | (aborted ? 0x80 : 0). */
    BusTx = 0,
    /** [span] One complete cache miss, trap to restart: arg1 = retries
     *  consumed, aux bit0 = dirty victim, bits1.. = miss kind
     *  (0 full, 1 ownership, 2 protection). */
    Miss,
    /** [span] One phase inside a miss; aux = MissPhase. */
    MissPhase,
    /** [span] One monitor-interrupt service burst; arg1 = words. */
    Service,
    /** [span] One block-copier transfer; arg1 = bus time ns,
     *  aux = TxType | (aborted ? 0x80 : 0). */
    Copy,
    /** [span] Inter-bus board global fetch/upgrade; aux bit0 =
     *  exclusive, bit1 = upgrade. */
    IbcFetch,
    /** [span] One whole board recovery, declaration to completion;
     *  master = dead board. */
    Recovery,
    /** [instant] One word queued into a monitor's interrupt FIFO;
     *  aux = TxType | (aborted ? 0x80 : 0). */
    IrqWord,
    /** [counter] Interrupt-FIFO depth after a push/pop; arg0 = depth,
     *  aux = 1 when the triggering push was dropped (overflow). */
    FifoDepth,
    /** [instant] Inter-bus board recalled a frame from its cluster. */
    IbcRecall,
    /** [instant] Inter-bus board wrote a dirty frame back globally. */
    IbcWriteBack,
    /** [instant] A board was declared dead; master = dead board. */
    RecoveryBegin,
    /** [instant] One orphaned frame reclaimed during recovery. */
    Reclaim,
    /** [span] One memory-tier page-in, request to image ready;
     *  master = asid, arg1 = vpn, aux = 1 for zero-fill. */
    TierFetch,
    /** [span] One memory-tier page-out, request to arena accept;
     *  master = asid, arg1 = vpn, aux = 1 when it stalled. */
    TierStore,
    /** [span] One dirty arena frame drained to the backend;
     *  master = asid, arg1 = vpn, aux = BackendKind. */
    TierEvict,
    /** [instant] One prefetched page installed in the arena;
     *  master = asid, arg1 = vpn. */
    TierPrefetch,
    /** [instant] One budget-controller epoch; arg0 = clients,
     *  arg1 = grants changed. */
    BudgetEpoch,
};

/** Number of event kinds (array-sizing constant). */
inline constexpr std::size_t kEventKinds =
    static_cast<std::size_t>(EventKind::BudgetEpoch) + 1;

/** Miss-handler phases profiled per miss (stored in MissPhase aux). */
enum class MissPhase : std::uint8_t
{
    /** Trap entry: processor state save + handler dispatch. */
    Trap = 0,
    /** Action-table lookup and bookkeeping (post/ownership window). */
    TableLookup,
    /** Victim selection + dirty-victim writeback (join window). */
    VictimWriteback,
    /** Block copy of the missed page into the cache. */
    BlockCopy,
    /** Consistency wait: abort-and-retry backoff on contention. */
    ConsistencyWait,
};

/** Number of miss phases (array-sizing constant). */
inline constexpr std::size_t kMissPhases =
    static_cast<std::size_t>(MissPhase::ConsistencyWait) + 1;

/** Stable lower-case name for an event kind (export identifiers). */
inline const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::BusTx: return "bus_tx";
      case EventKind::Miss: return "miss";
      case EventKind::MissPhase: return "miss_phase";
      case EventKind::Service: return "service";
      case EventKind::Copy: return "copy";
      case EventKind::IbcFetch: return "ibc_fetch";
      case EventKind::Recovery: return "recovery";
      case EventKind::IrqWord: return "irq_word";
      case EventKind::FifoDepth: return "fifo_depth";
      case EventKind::IbcRecall: return "ibc_recall";
      case EventKind::IbcWriteBack: return "ibc_writeback";
      case EventKind::RecoveryBegin: return "recovery_begin";
      case EventKind::Reclaim: return "reclaim";
      case EventKind::TierFetch: return "tier_fetch";
      case EventKind::TierStore: return "tier_store";
      case EventKind::TierEvict: return "tier_evict";
      case EventKind::TierPrefetch: return "tier_prefetch";
      case EventKind::BudgetEpoch: return "budget_epoch";
    }
    return "unknown";
}

/** Stable name for a miss phase (profiler/export identifiers). */
inline const char *
missPhaseName(MissPhase phase)
{
    switch (phase) {
      case MissPhase::Trap: return "trap";
      case MissPhase::TableLookup: return "table_lookup";
      case MissPhase::VictimWriteback: return "victim_writeback";
      case MissPhase::BlockCopy: return "block_copy";
      case MissPhase::ConsistencyWait: return "consistency_wait";
    }
    return "unknown";
}

/** True for kinds emitted as completed spans (at = start, arg0 = ns). */
inline bool
isSpan(EventKind kind)
{
    switch (kind) {
      case EventKind::BusTx:
      case EventKind::Miss:
      case EventKind::MissPhase:
      case EventKind::Service:
      case EventKind::Copy:
      case EventKind::IbcFetch:
      case EventKind::Recovery:
      case EventKind::TierFetch:
      case EventKind::TierStore:
      case EventKind::TierEvict:
        return true;
      default:
        return false;
    }
}

/**
 * One trace record. 40 bytes, trivially copyable; the ring buffer
 * stores these by value. Field meaning is kind-dependent (see
 * @ref EventKind); unused fields are zero.
 */
struct TraceEvent
{
    /** Event tick for instants/counters; interval START for spans. */
    Tick at = 0;
    /** Physical address involved, when meaningful. */
    std::uint64_t addr = 0;
    /** Span duration in ns, or counter value. */
    std::uint64_t arg0 = 0;
    /** Kind-specific secondary value (queue delay, words, retries). */
    std::uint64_t arg1 = 0;
    /** Originating master/board id, when meaningful. */
    std::uint32_t master = 0;
    /** Track the event belongs to (see EventTracer::registerTrack). */
    std::uint16_t track = 0;
    /** Discriminator for the fields above. */
    EventKind kind = EventKind::BusTx;
    /** Kind-specific packed byte (TxType|abort, MissPhase, flags). */
    std::uint8_t aux = 0;
};

} // namespace vmp::obs

#endif // VMP_OBS_TRACE_EVENT_HH
