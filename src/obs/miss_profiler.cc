/**
 * @file
 * MissProfiler implementation: per-track phase accumulation and the
 * fold into {kind, dirty} breakdown classes.
 */

#include "obs/miss_profiler.hh"

namespace vmp::obs
{

void
MissProfiler::observe(const TraceEvent &event)
{
    if (event.kind != EventKind::MissPhase &&
        event.kind != EventKind::Miss) {
        return;
    }
    if (pending_.size() <= event.track)
        pending_.resize(event.track + 1);
    Pending &pending = pending_[event.track];

    if (event.kind == EventKind::MissPhase) {
        const auto phase = static_cast<std::size_t>(event.aux);
        if (phase < kMissPhases)
            pending.phaseNs[phase] += event.arg0;
        return;
    }

    // Closing Miss span: fold the pending phases into the class.
    const bool dirty = (event.aux & 1u) != 0;
    const auto kind_raw = static_cast<std::size_t>(event.aux >> 1);
    const auto kind = static_cast<MissKind>(
        kind_raw < kMissKinds ? kind_raw : 0);
    MissBreakdown &cls = classes_[classIndex(kind, dirty)];
    ++cls.count;
    cls.elapsedNs += event.arg0;
    cls.retries += event.arg1;
    std::uint64_t phase_sum = 0;
    for (std::size_t i = 0; i < kMissPhases; ++i) {
        cls.phaseNs[i] += pending.phaseNs[i];
        phase_sum += pending.phaseNs[i];
    }
    pending.phaseNs.fill(0);
    ++misses_;
    const std::uint64_t mismatch = phase_sum > event.arg0
                                       ? phase_sum - event.arg0
                                       : event.arg0 - phase_sum;
    if (mismatch != 0) {
        ++mismatches_;
        if (mismatch > worstMismatchNs_)
            worstMismatchNs_ = mismatch;
    }
}

MissBreakdown
MissProfiler::total() const
{
    MissBreakdown out;
    for (const auto &cls : classes_) {
        out.count += cls.count;
        out.elapsedNs += cls.elapsedNs;
        out.retries += cls.retries;
        for (std::size_t i = 0; i < kMissPhases; ++i)
            out.phaseNs[i] += cls.phaseNs[i];
    }
    return out;
}

void
MissProfiler::registerStats(StatGroup &group) const
{
    group.addCounter("misses_profiled",
                     "misses folded into phase breakdowns", misses_);
    group.addCounter(
        "phase_sum_mismatches",
        "misses whose phase sum differed from elapsed time",
        mismatches_);
}

Json
MissProfiler::toJson() const
{
    Json doc = Json::object();
    doc["misses"] = Json(misses());
    doc["phase_sum_mismatches"] = Json(phaseSumMismatches());
    doc["worst_mismatch_ns"] = Json(worstMismatchNs_);
    Json classes = Json::array();
    for (std::size_t k = 0; k < kMissKinds; ++k) {
        for (int dirty = 0; dirty < 2; ++dirty) {
            const MissBreakdown &cls =
                classes_[k * 2 + static_cast<std::size_t>(dirty)];
            if (cls.count == 0)
                continue;
            Json row = Json::object();
            row["kind"] =
                Json(std::string(
                    missKindName(static_cast<MissKind>(k))));
            row["dirty"] = Json(dirty != 0);
            row["count"] = Json(cls.count);
            row["mean_elapsed_us"] = Json(cls.meanElapsedUs());
            row["retries"] = Json(cls.retries);
            Json phases = Json::object();
            for (std::size_t p = 0; p < kMissPhases; ++p) {
                phases[missPhaseName(static_cast<MissPhase>(p))] =
                    Json(cls.meanPhaseUs(static_cast<MissPhase>(p)));
            }
            row["mean_phase_us"] = std::move(phases);
            classes.push(std::move(row));
        }
    }
    doc["classes"] = std::move(classes);
    return doc;
}

} // namespace vmp::obs
