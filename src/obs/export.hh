/**
 * @file
 * Exporters for recorded traces: Chrome-trace/Perfetto JSON (loadable
 * in chrome://tracing or ui.perfetto.dev, one track per board/bus),
 * Figure-5-style time-series CSVs (bus utilization, interrupt-FIFO
 * depth), and a human-readable metrics snapshot.
 *
 * All exporters are deterministic: events are emitted in (tick, track)
 * order and floating-point values go through Json::numberToString, so
 * two runs with the same seeds produce byte-identical exports.
 */

#ifndef VMP_OBS_EXPORT_HH
#define VMP_OBS_EXPORT_HH

#include <iosfwd>
#include <string>

#include "obs/event_tracer.hh"
#include "obs/miss_profiler.hh"
#include "sim/json.hh"

namespace vmp::obs
{

/**
 * Chrome-trace JSON document: "M" thread_name metadata naming each
 * track, "X" complete events for spans (ts/dur in microseconds), "i"
 * instants, and "C" counter samples for FIFO depth. pid is always 0;
 * tid is the tracer's track id.
 */
Json chromeTraceJson(const EventTracer &tracer);

/** Write chromeTraceJson to @p os (2-space indent, trailing \n). */
void writeChromeTrace(const EventTracer &tracer, std::ostream &os);

/**
 * Bus-utilization time series (Figure-5 style): one row per @p bin_ns
 * bin, one column per track that carried BusTx spans, values the
 * fraction of the bin the bus was busy. Header row names the tracks.
 */
std::string busUtilizationCsv(const EventTracer &tracer,
                              Tick bin_ns = 100'000);

/**
 * Interrupt-FIFO depth time series, long format:
 * `t_us,track,depth,dropped` — one row per FifoDepth sample.
 */
std::string fifoDepthCsv(const EventTracer &tracer);

/**
 * Human-readable snapshot: per-track record/drop totals, per-kind
 * event counts, and (when @p profiler is non-null) the per-class miss
 * phase table.
 */
std::string metricsSnapshot(const EventTracer &tracer,
                            const MissProfiler *profiler = nullptr);

} // namespace vmp::obs

#endif // VMP_OBS_EXPORT_HH
