/**
 * @file
 * Exporters for recorded traces: Chrome-trace/Perfetto JSON (loadable
 * in chrome://tracing or ui.perfetto.dev, one track per board/bus),
 * Figure-5-style time-series CSVs (bus utilization, interrupt-FIFO
 * depth), and a human-readable metrics snapshot.
 *
 * All exporters are deterministic: events are emitted in (tick, track)
 * order and floating-point values go through Json::numberToString, so
 * two runs with the same seeds produce byte-identical exports.
 */

#ifndef VMP_OBS_EXPORT_HH
#define VMP_OBS_EXPORT_HH

#include <iosfwd>
#include <string>

#include "obs/event_tracer.hh"
#include "obs/gauges.hh"
#include "obs/miss_profiler.hh"
#include "sim/json.hh"

namespace vmp::obs
{

/**
 * Chrome-trace JSON document: "M" thread_name metadata naming each
 * track, "X" complete events for spans (ts/dur in microseconds), "i"
 * instants, and "C" counter samples for FIFO depth. pid is always 0;
 * tid is the tracer's track id.
 */
Json chromeTraceJson(const EventTracer &tracer);

/**
 * One TraceEvent as its Chrome-trace JSON object — the exact record
 * chromeTraceJson() emits for it. Public so the telemetry streaming
 * sink serializes events identically to the post-hoc exporter (the
 * streamed-vs-post-hoc equivalence gate depends on this being the
 * single source of truth).
 */
Json chromeTraceEvent(const TraceEvent &event);

/** The "M" thread_name metadata record naming @p track. */
Json chromeTrackMetadata(std::uint16_t track, const std::string &name);

/** Write chromeTraceJson to @p os (2-space indent, trailing \n). */
void writeChromeTrace(const EventTracer &tracer, std::ostream &os);

/**
 * Bus-utilization time series (Figure-5 style): one row per @p bin_ns
 * bin, one column per track that carried BusTx spans, values the
 * fraction of the bin the bus was busy. Header row names the tracks.
 */
std::string busUtilizationCsv(const EventTracer &tracer,
                              Tick bin_ns = 100'000);

/**
 * Interrupt-FIFO depth time series, long format:
 * `t_us,track,depth,dropped` — one row per FifoDepth sample.
 */
std::string fifoDepthCsv(const EventTracer &tracer);

/**
 * Human-readable snapshot: per-track record/drop totals, per-kind
 * event counts, (when @p profiler is non-null) the per-class miss
 * phase table, and (when @p gauges is non-null) one line per sampled
 * gauge — the hook that surfaces live BudgetController grants, arena
 * occupancy and RecoveryManager fencing counters mid-run instead of
 * only in the end-of-run stat groups (telemetry::collectGauges wires
 * those up for a whole system).
 */
std::string metricsSnapshot(const EventTracer &tracer,
                            const MissProfiler *profiler = nullptr,
                            const GaugeSet *gauges = nullptr);

} // namespace vmp::obs

#endif // VMP_OBS_EXPORT_HH
