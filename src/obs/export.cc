/**
 * @file
 * Trace exporters: Chrome-trace JSON, time-series CSVs, text snapshot.
 */

#include "obs/export.hh"

#include <array>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace vmp::obs
{

namespace
{

double
usec(Tick ns)
{
    return static_cast<double>(ns) / 1000.0;
}

/** One Chrome-trace event skeleton with the common fields filled. */
Json
chromeEvent(const char *ph, const char *name, const TraceEvent &event)
{
    Json j = Json::object();
    j["name"] = Json(name);
    j["ph"] = Json(ph);
    j["pid"] = Json(0);
    j["tid"] = Json(std::uint64_t{event.track});
    j["ts"] = Json(usec(event.at));
    return j;
}

Json
spanArgs(const TraceEvent &event)
{
    Json args = Json::object();
    switch (event.kind) {
      case EventKind::BusTx:
      case EventKind::Copy:
        args["addr"] = Json(event.addr);
        args["tx_type"] = Json(std::uint64_t{event.aux & 0x7fu});
        args["aborted"] = Json((event.aux & 0x80u) != 0);
        args["master"] = Json(std::uint64_t{event.master});
        if (event.kind == EventKind::BusTx)
            args["queue_delay_ns"] = Json(event.arg1);
        else
            args["bus_time_ns"] = Json(event.arg1);
        break;
      case EventKind::Miss:
        args["addr"] = Json(event.addr);
        args["dirty"] = Json((event.aux & 1u) != 0);
        args["kind"] = Json(std::string(missKindName(
            static_cast<MissKind>(event.aux >> 1))));
        args["retries"] = Json(event.arg1);
        break;
      case EventKind::Service:
        args["words"] = Json(event.arg1);
        break;
      case EventKind::IbcFetch:
        args["addr"] = Json(event.addr);
        args["exclusive"] = Json((event.aux & 1u) != 0);
        args["upgrade"] = Json((event.aux & 2u) != 0);
        break;
      case EventKind::Recovery:
        args["dead_board"] = Json(std::uint64_t{event.master});
        break;
      default:
        break;
    }
    return args;
}

} // namespace

Json
chromeTraceEvent(const TraceEvent &event)
{
    if (isSpan(event.kind)) {
        const char *name =
            event.kind == EventKind::MissPhase
                ? missPhaseName(static_cast<MissPhase>(event.aux))
                : eventKindName(event.kind);
        Json j = chromeEvent("X", name, event);
        j["dur"] = Json(usec(event.arg0));
        j["args"] = spanArgs(event);
        return j;
    }
    if (event.kind == EventKind::FifoDepth) {
        Json j = chromeEvent("C", "fifo_depth", event);
        Json args = Json::object();
        args["depth"] = Json(event.arg0);
        j["args"] = std::move(args);
        return j;
    }
    Json j = chromeEvent("i", eventKindName(event.kind), event);
    j["s"] = Json("t");
    Json args = Json::object();
    args["addr"] = Json(event.addr);
    args["master"] = Json(std::uint64_t{event.master});
    j["args"] = std::move(args);
    return j;
}

Json
chromeTrackMetadata(std::uint16_t track, const std::string &name)
{
    Json meta = Json::object();
    meta["name"] = Json("thread_name");
    meta["ph"] = Json("M");
    meta["pid"] = Json(0);
    meta["tid"] = Json(std::uint64_t{track});
    Json args = Json::object();
    args["name"] = Json(name);
    meta["args"] = std::move(args);
    return meta;
}

Json
chromeTraceJson(const EventTracer &tracer)
{
    Json events = Json::array();
    // Track-name metadata first, one per track, in track order.
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(tracer.trackCount()); ++t)
        events.push(chromeTrackMetadata(t, tracer.trackName(t)));
    for (const TraceEvent &event : tracer.allEvents())
        events.push(chromeTraceEvent(event));
    Json doc = Json::object();
    doc["displayTimeUnit"] = Json("ns");
    doc["traceEvents"] = std::move(events);
    return doc;
}

void
writeChromeTrace(const EventTracer &tracer, std::ostream &os)
{
    chromeTraceJson(tracer).write(os, 2);
    os << '\n';
}

std::string
busUtilizationCsv(const EventTracer &tracer, Tick bin_ns)
{
    if (bin_ns == 0)
        bin_ns = 1;
    // Collect BusTx spans per track; remember which tracks carry any.
    struct Column
    {
        std::uint16_t track;
        std::vector<TraceEvent> spans;
    };
    std::vector<Column> columns;
    Tick end = 0;
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(tracer.trackCount()); ++t) {
        Column col;
        col.track = t;
        for (const TraceEvent &event : tracer.events(t)) {
            if (event.kind != EventKind::BusTx)
                continue;
            col.spans.push_back(event);
            if (event.at + event.arg0 > end)
                end = event.at + event.arg0;
        }
        if (!col.spans.empty())
            columns.push_back(std::move(col));
    }
    std::ostringstream os;
    os << "t_us";
    for (const Column &col : columns)
        os << ',' << tracer.trackName(col.track);
    os << '\n';
    if (columns.empty())
        return os.str();
    const std::size_t bins =
        static_cast<std::size_t>((end + bin_ns - 1) / bin_ns);
    std::vector<std::vector<Tick>> busy(
        columns.size(), std::vector<Tick>(bins, 0));
    for (std::size_t c = 0; c < columns.size(); ++c) {
        for (const TraceEvent &event : columns[c].spans) {
            Tick lo = event.at;
            const Tick hi = event.at + event.arg0;
            while (lo < hi) {
                const std::size_t bin =
                    static_cast<std::size_t>(lo / bin_ns);
                const Tick bin_end = (bin + 1) * bin_ns;
                const Tick upto = hi < bin_end ? hi : bin_end;
                busy[c][bin] += upto - lo;
                lo = upto;
            }
        }
    }
    for (std::size_t bin = 0; bin < bins; ++bin) {
        os << Json::numberToString(usec(bin * bin_ns));
        for (std::size_t c = 0; c < columns.size(); ++c) {
            os << ','
               << Json::numberToString(
                      static_cast<double>(busy[c][bin]) /
                      static_cast<double>(bin_ns));
        }
        os << '\n';
    }
    return os.str();
}

std::string
fifoDepthCsv(const EventTracer &tracer)
{
    std::ostringstream os;
    os << "t_us,track,depth,dropped\n";
    for (const TraceEvent &event : tracer.allEvents()) {
        if (event.kind != EventKind::FifoDepth)
            continue;
        os << Json::numberToString(usec(event.at)) << ','
           << tracer.trackName(event.track) << ',' << event.arg0
           << ',' << unsigned{event.aux} << '\n';
    }
    return os.str();
}

std::string
metricsSnapshot(const EventTracer &tracer,
                const MissProfiler *profiler, const GaugeSet *gauges)
{
    std::ostringstream os;
    os << "obs snapshot: " << tracer.trackCount() << " tracks, "
       << tracer.recorded() << " events recorded, "
       << tracer.droppedOldest() << " overwritten (ring "
       << tracer.ringCapacity() << ")\n";
    std::array<std::uint64_t, kEventKinds> per_kind{};
    for (std::uint16_t t = 0;
         t < static_cast<std::uint16_t>(tracer.trackCount()); ++t) {
        const auto events = tracer.events(t);
        os << "  track " << t << " (" << tracer.trackName(t)
           << "): " << events.size() << " retained, "
           << tracer.droppedOn(t) << " overwritten\n";
        for (const TraceEvent &event : events)
            ++per_kind[static_cast<std::size_t>(event.kind)];
    }
    os << "  retained by kind:";
    for (std::size_t k = 0; k < kEventKinds; ++k) {
        if (per_kind[k] == 0)
            continue;
        os << ' ' << eventKindName(static_cast<EventKind>(k)) << '='
           << per_kind[k];
    }
    os << '\n';
    if (profiler != nullptr) {
        os << "  miss profile: " << profiler->misses()
           << " misses, " << profiler->phaseSumMismatches()
           << " phase-sum mismatches (worst "
           << profiler->worstMismatchNs() << " ns)\n";
        for (std::size_t k = 0; k < kMissKinds; ++k) {
            for (int dirty = 0; dirty < 2; ++dirty) {
                const MissBreakdown &cls = profiler->breakdown(
                    static_cast<MissKind>(k), dirty != 0);
                if (cls.count == 0)
                    continue;
                char line[256];
                std::snprintf(
                    line, sizeof line,
                    "    %-10s %-5s n=%-8llu elapsed=%8.2fus "
                    "trap=%.2f lookup=%.2f wb=%.2f copy=%.2f "
                    "wait=%.2f\n",
                    missKindName(static_cast<MissKind>(k)),
                    dirty != 0 ? "dirty" : "clean",
                    static_cast<unsigned long long>(cls.count),
                    cls.meanElapsedUs(),
                    cls.meanPhaseUs(MissPhase::Trap),
                    cls.meanPhaseUs(MissPhase::TableLookup),
                    cls.meanPhaseUs(MissPhase::VictimWriteback),
                    cls.meanPhaseUs(MissPhase::BlockCopy),
                    cls.meanPhaseUs(MissPhase::ConsistencyWait));
                os << line;
            }
        }
    }
    if (gauges != nullptr && !gauges->empty()) {
        os << "  gauges:\n";
        for (const GaugeGroup &group : gauges->groups()) {
            for (const Gauge &gauge : group.gauges) {
                os << "    " << group.name << '.' << gauge.name
                   << " = " << Json::numberToString(gauge.value)
                   << '\n';
            }
        }
    }
    return os.str();
}

} // namespace vmp::obs
