/**
 * @file
 * GaugeSet: a rolled-up snapshot of instantaneous metrics (bus
 * utilization, FIFO depths, arena occupancy, fencing counters, ...)
 * sampled at one point in simulated time.
 *
 * Unlike StatGroup — which registers live Counter references and is
 * read once at end of run — a GaugeSet is a *value*: whoever samples
 * it copies the numbers out, so it can be serialized mid-run (the
 * telemetry streaming sink emits one per flush) or rendered into
 * metricsSnapshot() without holding references into live components.
 * Groups and gauges keep insertion order, so serialized output is
 * deterministic for a given wiring.
 */

#ifndef VMP_OBS_GAUGES_HH
#define VMP_OBS_GAUGES_HH

#include <string>
#include <utility>
#include <vector>

#include "sim/json.hh"

namespace vmp::obs
{

/** One named instantaneous value inside a group. */
struct Gauge
{
    std::string name;
    double value = 0.0;
};

/** One component's worth of gauges ("bus", "cpu0", "budget", ...). */
struct GaugeGroup
{
    std::string name;
    std::vector<Gauge> gauges;
};

/** An ordered collection of gauge groups sampled at one instant. */
class GaugeSet
{
  public:
    /** Append @p name = @p value to @p group (created on first use). */
    void
    add(const std::string &group, const std::string &name,
        double value)
    {
        for (GaugeGroup &g : groups_) {
            if (g.name == group) {
                g.gauges.push_back({name, value});
                return;
            }
        }
        groups_.push_back({group, {{name, value}}});
    }

    const std::vector<GaugeGroup> &groups() const { return groups_; }

    bool empty() const { return groups_.empty(); }

    /** {"bus": {"utilization": 0.42, ...}, "cpu0": {...}, ...} */
    Json
    toJson() const
    {
        Json doc = Json::object();
        for (const GaugeGroup &group : groups_) {
            Json values = Json::object();
            for (const Gauge &gauge : group.gauges)
                values[gauge.name] = Json(gauge.value);
            doc[group.name] = std::move(values);
        }
        return doc;
    }

  private:
    std::vector<GaugeGroup> groups_;
};

} // namespace vmp::obs

#endif // VMP_OBS_GAUGES_HH
