#include "sync/locks.hh"

#include "sim/logging.hh"

namespace vmp::sync
{

namespace
{

using namespace vmp::cpu;

/** Append the critical-section body (counter + optional extra work). */
void
appendCriticalSection(Program &program, const LockWorkload &workload)
{
    program.push_back(opRead(workload.counterAddr, 2));
    program.push_back(opAddImm(2, 1));
    program.push_back(opWrite(workload.counterAddr, 2));
    for (std::uint32_t w = 0; w < workload.extraWork; ++w) {
        const Addr addr = workload.workBase + w * 64;
        program.push_back(opRead(addr, 3));
        program.push_back(opAddImm(3, 1));
        program.push_back(opWrite(addr, 3));
    }
}

/** Append the common epilogue: bookkeeping + loop + halt. */
void
appendEpilogue(Program &program, std::int32_t loop_head)
{
    program.push_back(opAddImm(7, 1));
    program.push_back(opDecBranchNotZero(1, loop_head));
    program.push_back(opHalt());
}

} // namespace

const char *
lockKindName(LockKind kind)
{
    switch (kind) {
      case LockKind::CachedTas: return "cached-tas";
      case LockKind::UncachedTas: return "uncached-tas";
      case LockKind::Notify: return "notify";
    }
    return "?";
}

cpu::Program
lockWorker(const LockWorkload &workload)
{
    if (workload.iterations == 0)
        fatal("lock worker needs at least one iteration");

    Program program;
    program.push_back(opMoveImm(1, workload.iterations));

    switch (workload.kind) {
      case LockKind::CachedTas: {
        // 1: tas; 2: spin back to 1 while held.
        const std::int32_t acquire = 1;
        program.push_back(opCachedTas(workload.lockAddr, 0));
        program.push_back(opBranchIfNotZero(0, acquire));
        appendCriticalSection(program, workload);
        program.push_back(opWriteImm(workload.lockAddr, 0));
        appendEpilogue(program, acquire);
        break;
      }

      case LockKind::UncachedTas: {
        const std::int32_t acquire = 1;
        program.push_back(opUncachedTas(workload.lockAddr, 0));
        program.push_back(opBranchIfNotZero(0, acquire));
        appendCriticalSection(program, workload);
        program.push_back(opUncachedWrite(workload.lockAddr, 0));
        appendEpilogue(program, acquire);
        break;
      }

      case LockKind::Notify: {
        // Subscribe the bus-monitor entry (11) for the lock's frame
        // once; then: tas -> taken? wait for the releaser's notify
        // transaction (with a timeout as safety net) and retry.
        program.push_back(
            opSetActionEntry(workload.lockAddr, 0b11)); // 1
        const std::int32_t acquire = 2;
        program.push_back(opUncachedTas(workload.lockAddr, 0)); // 2
        const std::int32_t crit = 6;
        program.push_back(opBranchIfZero(0, crit));             // 3
        program.push_back(
            opWaitNotify(workload.notifyTimeoutNs));            // 4
        program.push_back(opJump(acquire));                     // 5
        if (static_cast<std::int32_t>(program.size()) != crit)
            panic("notify lock program layout broken");
        appendCriticalSection(program, workload);
        program.push_back(opUncachedWrite(workload.lockAddr, 0));
        program.push_back(opNotify(workload.lockAddr));
        appendEpilogue(program, acquire);
        break;
      }
    }
    return program;
}

} // namespace vmp::sync
