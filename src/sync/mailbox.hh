/**
 * @file
 * Interprocessor messages over the bus monitor (Section 5.4: "the bus
 * monitor can also be used to implement interprocessor messages: the
 * bus monitor would interrupt the processor when a message is written
 * to the cache page corresponding to its mailbox").
 *
 * The mailbox is a small ring buffer in non-cached global memory
 * (reserved low frames): a spin word serializing senders, head/tail
 * indices, and a power-of-two array of 32-bit message slots. The
 * receiving processor sets its action-table entry for the mailbox's
 * frame to 11 (notify); a sender deposits the message with uncached
 * writes and issues one notify transaction, which interrupts exactly
 * the subscribed processor — no polling, no cache traffic.
 */

#ifndef VMP_SYNC_MAILBOX_HH
#define VMP_SYNC_MAILBOX_HH

#include <cstdint>
#include <functional>

#include "proto/controller.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vmp::sync
{

/** Word offsets of the mailbox header in memory. */
struct MailboxLayout
{
    static constexpr Addr lockOffset = 0;
    static constexpr Addr headOffset = 4;
    static constexpr Addr tailOffset = 8;
    static constexpr Addr slotsOffset = 12;

    /** Total bytes for a mailbox with @p slots message slots. */
    static constexpr std::uint32_t
    bytes(std::uint32_t slots)
    {
        return slotsOffset + slots * 4;
    }
};

/**
 * Receiving end of one mailbox, bound to the owning processor's
 * controller. Installs itself as the controller's notify handler (the
 * real system dispatches on the interrupt word's address; this model
 * supports one mailbox handler per processor plus pass-through for
 * other frames).
 */
class MailboxReceiver
{
  public:
    using Handler = std::function<void(std::uint32_t message)>;

    /**
     * @param base physical address of the mailbox (uncached region)
     * @param slots ring capacity (power of two)
     */
    MailboxReceiver(proto::CacheController &owner, Addr base,
                    std::uint32_t slots);
    ~MailboxReceiver();

    /** Subscribe: set the action-table entry to notify and install
     *  @p handler; completes when the entry is written. */
    void enable(Handler handler, proto::CacheController::Done done);

    /** Unsubscribe (entry back to 00). */
    void disable(proto::CacheController::Done done);

    Addr base() const { return base_; }
    std::uint32_t slots() const { return slots_; }
    const Counter &received() const { return received_; }

  private:
    /** Drain all queued messages, then idle. */
    void drain();

    proto::CacheController &owner_;
    Addr base_;
    std::uint32_t slots_;
    Handler handler_;
    bool draining_ = false;
    Counter received_;
};

/**
 * Send @p message to the mailbox at @p base through @p sender's
 * controller: acquire the mailbox spin word, append (dropping the
 * message if the ring is full — returned in the callback), release,
 * and notify. Any processor (or several concurrently) may send.
 */
void mailboxSend(proto::CacheController &sender, Addr base,
                 std::uint32_t slots, std::uint32_t message,
                 std::function<void(bool delivered)> done);

} // namespace vmp::sync

#endif // VMP_SYNC_MAILBOX_HH
