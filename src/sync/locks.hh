/**
 * @file
 * Synchronization primitives for the Section 5.4 study, expressed as
 * scripted-CPU program fragments:
 *
 *  - cached test-and-set spin lock (the naive design whose ownership
 *    ping-pong the paper warns about — worst when the lock shares a
 *    cache page with the data it protects);
 *  - uncached test-and-set lock in non-cached, globally addressable
 *    physical memory (one of the kernel-lock options of Section 5.4);
 *  - notification lock: a waiter subscribes its bus-monitor action-
 *    table entry (11) to the lock's frame and suspends; the releaser
 *    issues a notify transaction to wake it — no spinning at all.
 *
 * Each builder returns a program that acquires the lock, increments a
 * shared counter (the critical section), releases, and repeats for a
 * given iteration count, so lock overhead is directly comparable.
 */

#ifndef VMP_SYNC_LOCKS_HH
#define VMP_SYNC_LOCKS_HH

#include <cstdint>
#include <string>

#include "cpu/program.hh"
#include "sim/types.hh"

namespace vmp::sync
{

/** Lock flavours under study. */
enum class LockKind : std::uint8_t
{
    CachedTas,   //!< spin with TAS on cached memory
    UncachedTas, //!< spin with TAS on non-cached global memory
    Notify,      //!< uncached TAS + bus-monitor notification wakeup
};

const char *lockKindName(LockKind kind);

/** Parameters of a lock-study worker program. */
struct LockWorkload
{
    LockKind kind = LockKind::UncachedTas;
    /**
     * Lock location: a cached virtual address for CachedTas, a
     * physical address for UncachedTas/Notify.
     */
    Addr lockAddr = 0;
    /** Cached virtual address of the shared counter. */
    Addr counterAddr = 0;
    /** Critical-section entries per worker. */
    std::uint32_t iterations = 100;
    /**
     * Extra cached "work" addresses touched inside the critical
     * section (models real protected data beyond one counter).
     */
    std::uint32_t extraWork = 0;
    Addr workBase = 0;
    /** Notification-wait timeout (safety net), ns. */
    std::uint32_t notifyTimeoutNs = 200'000;
};

/**
 * Build the worker program for one CPU. On halt, register 7 holds the
 * number of completed critical sections.
 */
cpu::Program lockWorker(const LockWorkload &workload);

} // namespace vmp::sync

#endif // VMP_SYNC_LOCKS_HH
