#include "sync/mailbox.hh"

#include <memory>

#include "sim/logging.hh"

namespace vmp::sync
{

MailboxReceiver::MailboxReceiver(proto::CacheController &owner,
                                 Addr base, std::uint32_t slots)
    : owner_(owner), base_(base), slots_(slots)
{
    if (!isPowerOf2(slots) || slots == 0)
        fatal("mailbox slot count must be a power of two");
}

MailboxReceiver::~MailboxReceiver()
{
    owner_.setNotifyHandler(nullptr);
}

void
MailboxReceiver::enable(Handler handler,
                        proto::CacheController::Done done)
{
    handler_ = std::move(handler);
    owner_.setNotifyHandler([this](Addr paddr) {
        // Dispatch on the interrupt word's frame address.
        if (alignDown(base_, owner_.cache().config().pageBytes) ==
            paddr) {
            drain();
        }
    });
    owner_.writeActionTable(base_, mem::ActionEntry::Notify,
                            std::move(done));
}

void
MailboxReceiver::disable(proto::CacheController::Done done)
{
    owner_.setNotifyHandler(nullptr);
    handler_ = nullptr;
    owner_.writeActionTable(base_, mem::ActionEntry::Ignore,
                            std::move(done));
}

void
MailboxReceiver::drain()
{
    if (draining_)
        return;
    draining_ = true;

    auto step = std::make_shared<std::function<void()>>();
    *step = [this, step] {
        owner_.uncachedRead(
            base_ + MailboxLayout::headOffset,
            [this, step](std::uint32_t head) {
                owner_.uncachedRead(
                    base_ + MailboxLayout::tailOffset,
                    [this, step, head](std::uint32_t tail) {
                        if (head == tail) {
                            draining_ = false;
                            // Break the loop's self-reference.
                            *step = nullptr;
                            return;
                        }
                        const Addr slot_addr = base_ +
                            MailboxLayout::slotsOffset +
                            (head % slots_) * 4;
                        owner_.uncachedRead(
                            slot_addr,
                            [this, step, head](std::uint32_t message) {
                                owner_.uncachedWrite(
                                    base_ +
                                        MailboxLayout::headOffset,
                                    head + 1,
                                    [this, step, message] {
                                        ++received_;
                                        if (handler_)
                                            handler_(message);
                                        (*step)();
                                    });
                            });
                    });
            });
    };
    (*step)();
}

void
mailboxSend(proto::CacheController &sender, Addr base,
            std::uint32_t slots, std::uint32_t message,
            std::function<void(bool)> done)
{
    if (!isPowerOf2(slots) || slots == 0)
        fatal("mailbox slot count must be a power of two");

    // Acquire the mailbox spin word (senders only; the receiver's
    // head update is a single racing-safe word advance).
    auto acquire = std::make_shared<std::function<void()>>();
    *acquire = [&sender, base, slots, message,
                done = std::move(done), acquire] {
        sender.uncachedTas(
            base + MailboxLayout::lockOffset,
            [&sender, base, slots, message, done,
             acquire](std::uint32_t old) {
                if (old != 0) {
                    // Brief backoff, then retry the spin word.
                    (*acquire)();
                    return;
                }
                sender.uncachedRead(
                    base + MailboxLayout::headOffset,
                    [&sender, base, slots, message, done,
                     acquire](std::uint32_t head) {
                        sender.uncachedRead(
                            base + MailboxLayout::tailOffset,
                            [&sender, base, slots, message, done,
                             acquire, head](std::uint32_t tail) {
                                const bool full =
                                    tail - head >= slots;
                                auto finish =
                                    [&sender, base, done, acquire,
                                     full](bool notify) {
                                        sender.uncachedWrite(
                                            base +
                                                MailboxLayout::
                                                    lockOffset,
                                            0,
                                            [&sender, base, done,
                                             acquire, full, notify] {
                                                *acquire = nullptr;
                                                if (!notify) {
                                                    done(!full);
                                                    return;
                                                }
                                                sender.notifyFrame(
                                                    base,
                                                    [done, full] {
                                                        done(!full);
                                                    });
                                            });
                                    };
                                if (full) {
                                    finish(false);
                                    return;
                                }
                                const Addr slot_addr = base +
                                    MailboxLayout::slotsOffset +
                                    (tail % slots) * 4;
                                sender.uncachedWrite(
                                    slot_addr, message,
                                    [&sender, base, tail,
                                     finish = std::move(finish)] {
                                        sender.uncachedWrite(
                                            base +
                                                MailboxLayout::
                                                    tailOffset,
                                            tail + 1,
                                            [finish] {
                                                finish(true);
                                            });
                                    });
                            });
                    });
            });
    };
    (*acquire)();
}

} // namespace vmp::sync
