/**
 * @file
 * Multi-threaded driver for the embarrassingly parallel Figure-4/5
 * parameter sweeps. FastCacheSim is timeless and every sweep cell
 * ({cache size x page size x ways x workload}) is independent, so the
 * grid is fanned out across worker threads, one cell per task, with
 * deterministic per-cell RNG seeding: each cell's generator is
 * constructed from its own SyntheticConfig (which carries the seed),
 * and results land in a pre-sized vector indexed by cell. The merge
 * order therefore never depends on thread scheduling and the parallel
 * run is bitwise-identical to the serial one.
 */

#ifndef VMP_CORE_SWEEP_HH
#define VMP_CORE_SWEEP_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "cache/config.hh"
#include "core/fast_sim.hh"
#include "trace/synthetic.hh"

namespace vmp::core
{

/** One independent cell of a functional-simulation sweep. */
struct SweepCell
{
    /** Free-form identifier carried through to reporting. */
    std::string label;
    /** Cache geometry for this cell (storeData is forced off). */
    cache::CacheConfig config;
    /**
     * Workload for this cell, including its RNG seed. Determinism of
     * the whole sweep reduces to determinism of this one field set.
     */
    trace::SyntheticConfig workload;
};

/** Sweep execution knobs. */
struct SweepOptions
{
    /**
     * Worker threads; 0 means one per hardware thread. The thread
     * count never changes the results, only the wall-clock time.
     */
    unsigned threads = 0;
};

/** Resolve a requested thread count (0 -> hardware concurrency). */
unsigned sweepThreads(unsigned requested);

/** Result of one parallelMapOutcomes cell: a value or an error. */
template <typename T>
struct MapOutcome
{
    T value{};
    /** Set iff this cell threw; value is then default-constructed. */
    std::exception_ptr error;
};

/**
 * Evaluate fn(0) .. fn(count-1) on a worker pool and return every
 * outcome, in index order. A throwing cell never escapes a worker
 * thread (which would std::terminate the process): its exception is
 * captured into the cell's outcome and every *other* cell still runs
 * to completion, so one bad configuration cannot poison the rest of a
 * sweep. The thread count never changes the outcomes, only wall-clock.
 */
template <typename Fn>
auto
parallelMapOutcomes(std::size_t count, Fn &&fn,
                    const SweepOptions &options = {})
    -> std::vector<
        MapOutcome<std::decay_t<decltype(fn(std::size_t{}))>>>
{
    using T = std::decay_t<decltype(fn(std::size_t{}))>;
    std::vector<MapOutcome<T>> outcomes(count);
    const auto cell = [&](std::size_t i) {
        try {
            outcomes[i].value = fn(i);
        } catch (...) {
            outcomes[i].error = std::current_exception();
        }
    };

    unsigned threads = sweepThreads(options.threads);
    if (count < threads)
        threads = static_cast<unsigned>(count);
    if (threads <= 1 || count <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            cell(i);
        return outcomes;
    }

    std::atomic<std::size_t> next{0};
    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            cell(i);
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();
    return outcomes;
}

/**
 * parallelMapOutcomes, with errors re-raised: returns the values in
 * index order, or rethrows the *lowest-index* captured exception on
 * the calling thread. The error choice is deterministic (independent
 * of thread scheduling), matching the exception a serial loop would
 * have surfaced first.
 */
template <typename Fn>
auto
parallelMap(std::size_t count, Fn &&fn, const SweepOptions &options = {})
    -> std::vector<std::decay_t<decltype(fn(std::size_t{}))>>
{
    auto outcomes =
        parallelMapOutcomes(count, std::forward<Fn>(fn), options);
    for (auto &outcome : outcomes) {
        if (outcome.error)
            std::rethrow_exception(outcome.error);
    }
    std::vector<std::decay_t<decltype(fn(std::size_t{}))>> values;
    values.reserve(count);
    for (auto &outcome : outcomes)
        values.push_back(std::move(outcome.value));
    return values;
}

/**
 * Run every cell and return the per-cell results, in cell order. With
 * options.threads != 1 the cells execute on a worker pool; results are
 * bitwise-identical to runSweepSerial for any thread count. A cell
 * whose workload or cache configuration throws surfaces its exception
 * here, on the calling thread (lowest-index first), after every other
 * cell has completed.
 */
std::vector<FastSimResult> runSweep(const std::vector<SweepCell> &cells,
                                    const SweepOptions &options = {});

/** Single-threaded reference implementation of the same sweep. */
std::vector<FastSimResult>
runSweepSerial(const std::vector<SweepCell> &cells);

/**
 * Build the {cache size x page size} x four-ATUM-workloads grid used
 * by the Figure 4 style sweeps. Cells are ordered workload-major
 * within each (size, page) pair: cell index =
 * (sizeIdx * pages.size() + pageIdx) * workloads + workloadIdx.
 */
std::vector<SweepCell>
fig4Cells(const std::vector<std::uint64_t> &cache_sizes,
          const std::vector<std::uint32_t> &page_sizes,
          std::uint32_t ways = 4);

/**
 * Sum a workload-major result vector (as produced from fig4Cells)
 * into one aggregate per (size, page) point, in cell-group order.
 */
std::vector<FastSimResult>
mergeWorkloadGroups(const std::vector<FastSimResult> &results,
                    std::size_t group_size);

} // namespace vmp::core

#endif // VMP_CORE_SWEEP_HH
