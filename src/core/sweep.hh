/**
 * @file
 * Multi-threaded driver for the embarrassingly parallel Figure-4/5
 * parameter sweeps. FastCacheSim is timeless and every sweep cell
 * ({cache size x page size x ways x workload}) is independent, so the
 * grid is fanned out across worker threads, one cell per task, with
 * deterministic per-cell RNG seeding: each cell's generator is
 * constructed from its own SyntheticConfig (which carries the seed),
 * and results land in a pre-sized vector indexed by cell. The merge
 * order therefore never depends on thread scheduling and the parallel
 * run is bitwise-identical to the serial one.
 */

#ifndef VMP_CORE_SWEEP_HH
#define VMP_CORE_SWEEP_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/config.hh"
#include "core/fast_sim.hh"
#include "trace/synthetic.hh"

namespace vmp::core
{

/** One independent cell of a functional-simulation sweep. */
struct SweepCell
{
    /** Free-form identifier carried through to reporting. */
    std::string label;
    /** Cache geometry for this cell (storeData is forced off). */
    cache::CacheConfig config;
    /**
     * Workload for this cell, including its RNG seed. Determinism of
     * the whole sweep reduces to determinism of this one field set.
     */
    trace::SyntheticConfig workload;
};

/** Sweep execution knobs. */
struct SweepOptions
{
    /**
     * Worker threads; 0 means one per hardware thread. The thread
     * count never changes the results, only the wall-clock time.
     */
    unsigned threads = 0;
};

/** Resolve a requested thread count (0 -> hardware concurrency). */
unsigned sweepThreads(unsigned requested);

/**
 * Run every cell and return the per-cell results, in cell order. With
 * options.threads != 1 the cells execute on a worker pool; results are
 * bitwise-identical to runSweepSerial for any thread count.
 */
std::vector<FastSimResult> runSweep(const std::vector<SweepCell> &cells,
                                    const SweepOptions &options = {});

/** Single-threaded reference implementation of the same sweep. */
std::vector<FastSimResult>
runSweepSerial(const std::vector<SweepCell> &cells);

/**
 * Build the {cache size x page size} x four-ATUM-workloads grid used
 * by the Figure 4 style sweeps. Cells are ordered workload-major
 * within each (size, page) pair: cell index =
 * (sizeIdx * pages.size() + pageIdx) * workloads + workloadIdx.
 */
std::vector<SweepCell>
fig4Cells(const std::vector<std::uint64_t> &cache_sizes,
          const std::vector<std::uint32_t> &page_sizes,
          std::uint32_t ways = 4);

/**
 * Sum a workload-major result vector (as produced from fig4Cells)
 * into one aggregate per (size, page) point, in cell-group order.
 */
std::vector<FastSimResult>
mergeWorkloadGroups(const std::vector<FastSimResult> &results,
                    std::size_t group_size);

} // namespace vmp::core

#endif // VMP_CORE_SWEEP_HH
