#include "core/sweep.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "trace/workloads.hh"

namespace vmp::core
{

namespace
{

FastSimResult
runCell(const SweepCell &cell)
{
    trace::SyntheticGen gen(cell.workload);
    FastCacheSim sim(cell.config);
    return sim.run(gen);
}

} // namespace

unsigned
sweepThreads(unsigned requested)
{
    if (requested != 0)
        return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

std::vector<FastSimResult>
runSweepSerial(const std::vector<SweepCell> &cells)
{
    std::vector<FastSimResult> results(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        results[i] = runCell(cells[i]);
    return results;
}

std::vector<FastSimResult>
runSweep(const std::vector<SweepCell> &cells,
         const SweepOptions &options)
{
    return parallelMap(
        cells.size(), [&](std::size_t i) { return runCell(cells[i]); },
        options);
}

std::vector<SweepCell>
fig4Cells(const std::vector<std::uint64_t> &cache_sizes,
          const std::vector<std::uint32_t> &page_sizes,
          std::uint32_t ways)
{
    const auto workloads = trace::allWorkloads();
    const auto names = trace::workloadNames();
    std::vector<SweepCell> cells;
    cells.reserve(cache_sizes.size() * page_sizes.size() *
                  workloads.size());
    for (const auto size : cache_sizes) {
        for (const auto page : page_sizes) {
            for (std::size_t w = 0; w < workloads.size(); ++w) {
                SweepCell cell;
                cell.label = std::to_string(size / 1024) + "K/" +
                    std::to_string(page) + "B/" +
                    std::to_string(ways) + "w/" + names[w];
                cell.config = cache::CacheConfig::forSize(
                    size, page, ways, false);
                cell.workload = workloads[w];
                cells.push_back(std::move(cell));
            }
        }
    }
    return cells;
}

std::vector<FastSimResult>
mergeWorkloadGroups(const std::vector<FastSimResult> &results,
                    std::size_t group_size)
{
    if (group_size == 0 || results.size() % group_size != 0)
        panic("mergeWorkloadGroups: ", results.size(),
              " results do not divide into groups of ", group_size);
    std::vector<FastSimResult> merged(results.size() / group_size);
    for (std::size_t g = 0; g < merged.size(); ++g) {
        for (std::size_t i = 0; i < group_size; ++i)
            merged[g] += results[g * group_size + i];
    }
    return merged;
}

} // namespace vmp::core
