#include "core/system.hh"

#include <ostream>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"

namespace vmp::core
{

void
VmpConfig::check() const
{
    cache.check();
    if (processors == 0 || processors > 64)
        fatal("system: processors must be in [1, 64]");
    if (memBytes == 0 || memBytes % cache.pageBytes != 0)
        fatal("system: memory must be a positive multiple of the cache "
              "page size");
    if (fifoCapacity == 0)
        fatal("system: FIFO capacity must be positive");
    arbitration.check();
}

ProcessorBoard::ProcessorBoard(CpuId id, EventQueue &events,
                               mem::VmeBus &bus,
                               proto::Translator &translator,
                               const VmpConfig &config)
    : cache(config.cache),
      monitor(id, config.memBytes, config.cache.pageBytes,
              config.fifoCapacity),
      controller(id, events, cache, monitor, bus, translator,
                 config.swTiming)
{
    bus.attachWatcher(id, monitor);
}

std::string
RunResult::toString() const
{
    std::ostringstream os;
    os << "refs=" << totalRefs << " misses=" << totalMisses
       << " missRatio=" << missRatio * 100 << "%"
       << " perf=" << performance
       << " busUtil=" << busUtilization * 100 << "%"
       << " aborts=" << busAborts << " writeBacks=" << writeBacks
       << " elapsed=" << toUsec(elapsed) << "us";
    return os.str();
}

VmpSystem::VmpSystem(const VmpConfig &config,
                     proto::Translator *translator)
    : cfg_(config), memory_(config.memBytes, config.cache.pageBytes),
      bus_(events_, memory_, config.busTiming, config.arbitration)
{
    cfg_.check();
    if (translator == nullptr) {
        ownedTranslator_ = std::make_unique<proto::DemandTranslator>(
            cfg_.memBytes, cfg_.cache.pageBytes, trace::kernelBase,
            trace::userBase);
        translator_ = ownedTranslator_.get();
    } else {
        translator_ = translator;
    }
    for (CpuId id = 0; id < cfg_.processors; ++id) {
        boards_.push_back(std::make_unique<ProcessorBoard>(
            id, events_, bus_, *translator_, cfg_));
    }
}

std::uint32_t
VmpSystem::processors() const
{
    return cfg_.processors;
}

ProcessorBoard &
VmpSystem::board(std::size_t index)
{
    if (index >= boards_.size())
        panic("board index ", index, " out of range");
    return *boards_[index];
}

const ProcessorBoard &
VmpSystem::board(std::size_t index) const
{
    if (index >= boards_.size())
        panic("board index ", index, " out of range");
    return *boards_[index];
}

proto::CacheController &
VmpSystem::controller(std::size_t index)
{
    return board(index).controller;
}

const proto::CacheController &
VmpSystem::controller(std::size_t index) const
{
    return board(index).controller;
}

RunResult
VmpSystem::runTraces(const std::vector<trace::RefSource *> &sources)
{
    if (sources.size() > boards_.size())
        fatal("system: ", sources.size(), " traces for ",
              boards_.size(), " processors");

    std::vector<std::unique_ptr<cpu::TraceCpu>> cpus;
    std::vector<cpu::TraceCpu *> raw;
    std::size_t remaining = sources.size();
    for (std::size_t i = 0; i < sources.size(); ++i) {
        cpus.push_back(std::make_unique<cpu::TraceCpu>(
            static_cast<CpuId>(i), events_, controller(i),
            *sources[i], cfg_.cpuTiming));
        raw.push_back(cpus.back().get());
    }
    activeCpus_ = raw;
    for (auto &c : cpus)
        c->run([&remaining] { --remaining; });
    events_.run();
    // A CPU failstopped mid-trace never fires its completion callback;
    // any other shortfall is a genuine hang.
    std::size_t halted_midrun = 0;
    for (const auto *c : raw) {
        if (c->halted() && !c->finished())
            ++halted_midrun;
    }
    if (remaining != halted_midrun) {
        panic("system: ", remaining - halted_midrun,
              " trace CPUs did not finish");
    }
    RunResult result = collect(raw);
    activeCpus_.clear();
    return result;
}

std::vector<std::unique_ptr<cpu::ProgramCpu>>
VmpSystem::runPrograms(const std::vector<cpu::Program> &programs)
{
    if (programs.size() > boards_.size())
        fatal("system: ", programs.size(), " programs for ",
              boards_.size(), " processors");

    std::vector<std::unique_ptr<cpu::ProgramCpu>> cpus;
    std::size_t remaining = programs.size();
    for (std::size_t i = 0; i < programs.size(); ++i) {
        cpus.push_back(std::make_unique<cpu::ProgramCpu>(
            static_cast<CpuId>(i), events_, controller(i),
            static_cast<Asid>(i + 1), programs[i], cfg_.cpuTiming));
    }
    for (auto &c : cpus)
        c->run([&remaining] { --remaining; });
    events_.run();
    if (remaining != 0)
        panic("system: ", remaining, " program CPUs did not halt");
    return cpus;
}

void
VmpSystem::attachIdleServicers()
{
    for (auto &board : boards_) {
        auto *controller = &board->controller;
        controller->busMonitor().setInterruptLine(
            [this, controller] {
                events_.scheduleIn(1, [controller] {
                    controller->serviceInterrupts([] {});
                }, "idle-service");
            });
    }
}

fault::FaultInjector &
VmpSystem::enableFaultInjection(const fault::FaultSchedule &schedule)
{
    if (injector_)
        fatal("system: fault injection enabled twice");
    injector_ = std::make_unique<fault::FaultInjector>(events_, schedule);
    bus_.setFaultHooks(injector_.get());
    for (auto &board : boards_) {
        board->monitor.setFaultHooks(injector_.get(), &events_);
        board->controller.setFaultHooks(injector_.get());
    }
    if (schedule.arms(fault::FaultKind::DmaBurst)) {
        // Scratch frames 8..15 sit inside the demand translator's
        // reserved low region: DMA traffic there perturbs bus timing
        // and monitor snooping without ever touching a cached page.
        injector_->attachDmaTarget(bus_, cfg_.processors + 64,
                                   8ull * cfg_.cache.pageBytes,
                                   cfg_.cache.pageBytes, 8);
    }
    // Board crashes are time-driven: turn each schedule entry into
    // kill/rejoin events now (deterministic, no RNG draw).
    for (const auto &crash : injector_->schedule().crashes) {
        if (crash.interBus) {
            fatal("system: crashInterBus() on a flat (single-bus) "
                  "system");
        }
        killBoard(crash.board, crash.at);
        if (crash.rejoinAt != 0)
            rejoinBoard(crash.board, crash.rejoinAt);
    }
    // Partial failures (wedge/stuck/slow) are likewise time-driven;
    // babble is opportunity-driven through the injectFifoBabble seam
    // and needs no event here.
    for (const auto &part : injector_->schedule().partials)
        armPartialFault(part);
    return *injector_;
}

void
VmpSystem::armPartialFault(const fault::PartialFaultSpec &spec)
{
    if (spec.interBus) {
        fatal("system: wedgeInterBus() on a flat (single-bus) "
              "system");
    }
    if (spec.board >= boards_.size())
        fatal("system: partial fault on board ", spec.board,
              " out of range");
    if (spec.kind == fault::FaultKind::FifoBabble)
        return; // drawn per bus transaction inside the injector
    const std::uint32_t index = spec.board;
    events_.schedule(spec.at, [this, index, spec] {
        ProcessorBoard &board = *boards_[index];
        if (board.controller.dead())
            return;
        VMP_DTRACE(debug::Fault, events_.now(), "board ", index,
                   " partial fault onset: ",
                   fault::faultKindName(spec.kind));
        switch (spec.kind) {
        case fault::FaultKind::MonitorWedge:
            // Service loop stops draining; CPU and monitor hardware
            // keep running against the rotting FIFO/table.
            board.controller.setWedged(true);
            break;
        case fault::FaultKind::ActionTableStuck:
            board.monitor.setTableStuck(true);
            break;
        case fault::FaultKind::SlowBoard:
            board.controller.setServiceSlowdown(spec.factor);
            break;
        default:
            fatal("system: unexpected partial fault kind");
        }
        injector_->notePartialFault(spec.kind);
    }, "partial-fault");
    if (spec.clearAt == 0)
        return;
    events_.schedule(spec.clearAt, [this, index, spec] {
        ProcessorBoard &board = *boards_[index];
        switch (spec.kind) {
        case fault::FaultKind::MonitorWedge:
            board.controller.setWedged(false);
            break;
        case fault::FaultKind::ActionTableStuck:
            board.monitor.setTableStuck(false);
            break;
        case fault::FaultKind::SlowBoard:
            board.controller.setServiceSlowdown(1);
            break;
        default:
            break;
        }
        VMP_DTRACE(debug::Fault, events_.now(), "board ", index,
                   " partial fault cleared: ",
                   fault::faultKindName(spec.kind));
    }, "partial-clear");
}

obs::EventTracer &
VmpSystem::enableTracing(obs::TraceConfig config)
{
    if (tracer_)
        fatal("system: tracing enabled twice");
    tracer_ = std::make_unique<obs::EventTracer>(config.ringCapacity);
    if (config.profileMisses) {
        profiler_ = std::make_unique<obs::MissProfiler>();
        tracer_->addSink(profiler_->sink());
    }
    const std::uint16_t bus_track = tracer_->registerTrack("bus");
    bus_.setTracer(tracer_.get(), bus_track);
    for (std::size_t i = 0; i < boards_.size(); ++i) {
        const std::uint16_t track =
            tracer_->registerTrack("cpu" + std::to_string(i));
        boards_[i]->monitor.setTracer(tracer_.get(), track, &events_);
        boards_[i]->controller.setTracer(tracer_.get(), track);
    }
    recoverTrack_ = tracer_->registerTrack("recover");
    if (recovery_)
        recovery_->setTracer(tracer_.get(), recoverTrack_);
    VMP_DTRACE(debug::Obs, events_.now(), "tracing armed: ",
               tracer_->trackCount(), " tracks, ring capacity ",
               tracer_->ringCapacity());
    return *tracer_;
}

recover::RecoveryManager &
VmpSystem::enableRecovery(recover::RecoveryConfig options)
{
    if (recovery_)
        fatal("system: recovery enabled twice");
    recovery_ = std::make_unique<recover::RecoveryManager>(
        events_, bus_, memory_, options);
    if (tracer_)
        recovery_->setTracer(tracer_.get(), recoverTrack_);
    for (std::size_t i = 0; i < boards_.size(); ++i) {
        auto *controller = &boards_[i]->controller;
        auto *monitor = &boards_[i]->monitor;
        recovery_->addBoard(static_cast<std::uint32_t>(i),
                            boards_[i]->monitor,
                            [controller] { return !controller->dead(); });
        controller->setDeadOwnerOracle(recovery_.get());
        // Health witness: the probe channel the detector's partial-
        // failure witnesses read. A wedged service loop still answers
        // alive (the hazard) but stops being responsive and freezes
        // its progress epoch.
        recovery_->detector().setHealthFn(
            static_cast<std::uint32_t>(i), [controller, monitor] {
                recover::HealthReport report;
                report.alive = !controller->dead();
                report.responsive =
                    !controller->dead() && !controller->wedged();
                report.progressEpoch = controller->serviceEpoch();
                report.pendingWords =
                    monitor->fifo().size() +
                    (monitor->fifo().overflowed() ? 1 : 0);
                report.wordsServiced =
                    controller->wordsServiced().value();
                report.spuriousWords =
                    controller->spuriousWords().value();
                report.serviceBusyNs = controller->serviceCpuTicks();
                report.fifoPushed = monitor->fifo().pushed().value();
                return report;
            });
    }
    // Quarantine hooks: park stops the fenced board's reference
    // stream; resync cold-restarts its controller software after an
    // unfence (monitor already unmasked over a clean table).
    recovery_->setFenceHooks(
        [this](std::uint32_t master) {
            if (master < activeCpus_.size() &&
                activeCpus_[master] != nullptr) {
                activeCpus_[master]->requestFailstop();
            }
        },
        [this](std::uint32_t master) {
            ProcessorBoard &board = *boards_[master];
            // Babble pushed through the masked window: start empty.
            while (board.monitor.fifo().pop().has_value()) {
            }
            board.monitor.fifo().clearOverflow();
            if (!board.controller.dead())
                board.controller.failstop();
            board.controller.rejoin();
            if (master < activeCpus_.size() &&
                activeCpus_[master] != nullptr) {
                activeCpus_[master]->resume();
            }
        });
    // Checker may be installed before or after: resolve at sweep time.
    recovery_->setPostReclaimHook([this] {
        if (checker_)
            checker_->checkOwnersSweep();
    });
    if (checkpointStore_) {
        recovery_->setBackingStore(checkpointStore_.get(),
                                   checkpointer_->asid());
    }
    recovery_->install();
    return *recovery_;
}

backing::PageStore &
VmpSystem::enableFrameCheckpoint(Asid asid)
{
    if (checkpointer_)
        fatal("system: frame checkpoint enabled twice");
    // Latency 0: the shadow is written as part of the memory board's
    // own store path; recovery still pays its restore DMA.
    checkpointStore_ = std::make_unique<backing::PageStore>(
        0, memory_.pageBytes());
    checkpointer_ = std::make_unique<backing::FrameCheckpointer>(
        memory_, *checkpointStore_, asid);
    checkpointer_->install(bus_);
    if (recovery_)
        recovery_->setBackingStore(checkpointStore_.get(), asid);
    return *checkpointStore_;
}

void
VmpSystem::killBoard(std::uint32_t index, Tick at)
{
    if (index >= boards_.size())
        fatal("system: killBoard(", index, ") out of range");
    events_.schedule(at, [this, index] {
        ProcessorBoard &board = *boards_[index];
        if (board.controller.dead())
            return;
        VMP_DTRACE(debug::Recover, events_.now(), "killing board ",
                   index);
        if (index < activeCpus_.size() &&
            activeCpus_[index] != nullptr) {
            activeCpus_[index]->requestFailstop();
        }
        // The controller software dies; the monitor *hardware* keeps
        // driving the bus from its (now stale) table.
        board.controller.failstop();
        if (injector_)
            injector_->noteBoardCrash();
    }, "kill-board");
}

void
VmpSystem::rejoinBoard(std::uint32_t index, Tick at)
{
    if (index >= boards_.size())
        fatal("system: rejoinBoard(", index, ") out of range");
    events_.schedule(at, [this, index] { doRejoin(index); },
                     "rejoin-board");
}

void
VmpSystem::doRejoin(std::uint32_t index)
{
    ProcessorBoard &board = *boards_[index];
    if (!board.controller.dead())
        return;
    // Never rip the table out from under an in-flight reclaim scan:
    // defer the rejoin until the coordinator finishes.
    if (recovery_ != nullptr && recovery_->recovering()) {
        events_.scheduleIn(usec(10), [this, index] { doRejoin(index); },
                          "rejoin-board");
        return;
    }
    VMP_DTRACE(debug::Recover, events_.now(), "board ", index,
               " hot-rejoining");
    // Cold hardware state: empty table, empty FIFO, unmasked monitor.
    board.monitor.table().clear();
    while (board.monitor.fifo().pop().has_value()) {
    }
    board.monitor.fifo().clearOverflow();
    board.monitor.setMasked(false);
    board.controller.rejoin();
    if (recovery_)
        recovery_->markRejoined(index);
    if (index < activeCpus_.size() && activeCpus_[index] != nullptr)
        activeCpus_[index]->resume();
}

check::CoherenceChecker &
VmpSystem::enableCoherenceChecker(check::CheckerOptions options)
{
    if (checker_)
        fatal("system: coherence checker enabled twice");
    checker_ = std::make_unique<check::CoherenceChecker>(bus_, memory_,
                                                         options);
    for (auto &board : boards_)
        checker_->addController(board->controller);
    checker_->install();
    return *checker_;
}

void
VmpSystem::setWatchdog(std::uint64_t maxRetries,
                       proto::CacheController::WatchdogHandler handler)
{
    for (auto &board : boards_)
        board->controller.setWatchdog(maxRetries, handler);
}

void
VmpSystem::setUserPrivateHint(bool enabled)
{
    if (!ownedTranslator_)
        fatal("setUserPrivateHint requires the internal demand "
              "translator");
    ownedTranslator_->setUserPrivateHint(enabled);
}

void
VmpSystem::dumpStats(std::ostream &os) const
{
    StatGroup bus_group("bus");
    bus_.registerStats(bus_group);
    bus_group.dump(os);
    for (std::size_t i = 0; i < boards_.size(); ++i) {
        StatGroup cpu_group("cpu" + std::to_string(i));
        boards_[i]->controller.registerStats(cpu_group);
        boards_[i]->cache.registerStats(cpu_group);
        cpu_group.dump(os);
    }
    if (injector_) {
        StatGroup fault_group("fault");
        injector_->registerStats(fault_group);
        fault_group.dump(os);
    }
    if (checker_) {
        StatGroup check_group("check");
        checker_->registerStats(check_group);
        check_group.dump(os);
    }
    if (recovery_) {
        StatGroup recover_group("recover");
        recovery_->registerStats(recover_group);
        recover_group.dump(os);
    }
    if (checkpointer_) {
        StatGroup backing_group("backing");
        checkpointer_->registerStats(backing_group);
        backing_group.dump(os);
    }
    if (tracer_) {
        StatGroup obs_group("obs");
        tracer_->registerStats(obs_group);
        if (profiler_)
            profiler_->registerStats(obs_group);
        obs_group.dump(os);
    }
}

Json
VmpSystem::statsJson() const
{
    // The groups reference component members directly, so they only
    // need to stay alive until the registry is serialized.
    std::vector<std::unique_ptr<StatGroup>> groups;
    StatRegistry registry;

    groups.push_back(std::make_unique<StatGroup>("bus"));
    bus_.registerStats(*groups.back());
    registry.add(*groups.back());
    for (std::size_t i = 0; i < boards_.size(); ++i) {
        groups.push_back(std::make_unique<StatGroup>(
            "cpu" + std::to_string(i)));
        boards_[i]->controller.registerStats(*groups.back());
        boards_[i]->cache.registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (injector_) {
        groups.push_back(std::make_unique<StatGroup>("fault"));
        injector_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (checker_) {
        groups.push_back(std::make_unique<StatGroup>("check"));
        checker_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (recovery_) {
        groups.push_back(std::make_unique<StatGroup>("recover"));
        recovery_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (checkpointer_) {
        groups.push_back(std::make_unique<StatGroup>("backing"));
        checkpointer_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (tracer_) {
        groups.push_back(std::make_unique<StatGroup>("obs"));
        tracer_->registerStats(*groups.back());
        if (profiler_)
            profiler_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    return registry.toJson();
}

RunResult
VmpSystem::collect(const std::vector<cpu::TraceCpu *> &cpus) const
{
    RunResult result;
    result.elapsed = events_.now();
    double perf_sum = 0.0;
    for (const auto *c : cpus) {
        result.totalRefs += c->refsRetired().value();
        perf_sum += c->performance();
    }
    for (const auto &b : boards_) {
        result.totalMisses += b->controller.misses().value();
        result.writeBacks += b->controller.writeBacks().value();
    }
    result.missRatio = result.totalRefs == 0
        ? 0.0
        : static_cast<double>(result.totalMisses) /
            static_cast<double>(result.totalRefs);
    result.performance =
        cpus.empty() ? 0.0 : perf_sum / static_cast<double>(cpus.size());
    result.busUtilization = bus_.utilization();
    result.busAborts = bus_.aborts().value();
    result.busUpgrades =
        bus_.countOf(mem::TxType::AssertOwnership).value();
    return result;
}

} // namespace vmp::core
