/**
 * @file
 * HierVmpSystem: the two-level bus hierarchy that scales past the
 * single-VMEbus ceiling of Section 5.3 ("up to 5 processors"). K
 * clusters, each a local VMEbus carrying up to ~5 processor boards
 * plus one inter-bus cache board (src/hier), are bridged onto a global
 * bus with main memory. Each cluster's image of physical memory acts
 * as a very large shared cache: local misses that hit the image stay
 * on the local bus, and only cluster-level misses and cross-cluster
 * consistency traffic reach the global bus.
 *
 * The seven DESIGN.md invariants hold per level: within a cluster the
 * flat two-state protocol runs unmodified against the cluster image,
 * and across clusters the inter-bus boards run the same protocol
 * against main memory, each board the single owner proxy for its
 * cluster.
 */

#ifndef VMP_CORE_HIER_SYSTEM_HH
#define VMP_CORE_HIER_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "backing/budget.hh"
#include "core/system.hh"
#include "hier/inter_bus_board.hh"

namespace vmp::core
{

/** Two-level machine configuration. */
struct HierConfig
{
    /** Number of clusters (local buses) on the global bus. */
    std::uint32_t clusters = 2;
    /** Processor boards per cluster (the paper's bus supports ~5). */
    std::uint32_t cpusPerCluster = 4;
    /** Per-processor cache geometry. */
    cache::CacheConfig cache{256, 4, 256, true};
    /** Main-memory size; every cluster image is the same size. */
    std::uint64_t memBytes = MiB(8);
    /** Local (cluster) bus timing. */
    mem::BusTiming localBusTiming{};
    /** Global bus timing. */
    mem::BusTiming globalBusTiming{};
    /** Arbitration discipline of every local bus. */
    mem::ArbitrationConfig localArbitration{};
    /** Arbitration discipline of the global bus. */
    mem::ArbitrationConfig globalArbitration{};
    proto::SoftwareTiming swTiming{};
    cpu::M68020Timing cpuTiming{};
    /** Processor bus-monitor FIFO depth. */
    std::size_t fifoCapacity = 128;
    /** Inter-bus board software budget. */
    hier::IbcTiming ibcTiming{};
    /** Inter-bus board FIFO depth (both FIFOs). */
    std::size_t ibcFifoCapacity = 128;

    std::uint32_t totalCpus() const { return clusters * cpusPerCluster; }
    /** The per-cluster flat configuration the boards are built from. */
    VmpConfig clusterConfig() const;
    void check() const;
};

/** Aggregate results of a hierarchical run. */
struct HierRunResult : RunResult
{
    /** busUtilization (inherited) is the *global* bus utilization. */
    double meanLocalBusUtilization = 0.0;
    double peakLocalBusUtilization = 0.0;
    /** Page fetches the inter-bus boards made over the global bus. */
    std::uint64_t globalFetches = 0;
    /** Image pages written back to main memory. */
    std::uint64_t globalWriteBacks = 0;
    /** Aggregate simulated references per simulated second. */
    double refsPerSec = 0.0;

    std::string toString() const;
};

/** The two-level machine. */
class HierVmpSystem
{
  public:
    /**
     * Build a system. If @p translator is null one internal
     * DemandTranslator is shared machine-wide (a single physical
     * address space, as with one main memory).
     */
    explicit HierVmpSystem(const HierConfig &config,
                           proto::Translator *translator = nullptr);
    ~HierVmpSystem(); // out of line: Cluster is incomplete here

    const HierConfig &config() const { return cfg_; }
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }
    /** Main (global) memory. */
    mem::PhysMem &memory() { return memory_; }
    mem::VmeBus &globalBus() { return globalBus_; }
    const mem::VmeBus &globalBus() const { return globalBus_; }
    std::uint32_t clusters() const { return cfg_.clusters; }
    std::uint32_t cpusPerCluster() const { return cfg_.cpusPerCluster; }
    std::uint32_t totalCpus() const { return cfg_.totalCpus(); }

    mem::VmeBus &localBus(std::size_t cluster);
    const mem::VmeBus &localBus(std::size_t cluster) const;
    mem::PhysMem &image(std::size_t cluster);
    hier::InterBusBoard &interBusBoard(std::size_t cluster);
    const hier::InterBusBoard &interBusBoard(std::size_t cluster) const;

    /** Board/controller for the flat CPU index
     *  (cluster = index / cpusPerCluster). */
    ProcessorBoard &board(std::size_t cpu);
    const ProcessorBoard &board(std::size_t cpu) const;
    proto::CacheController &controller(std::size_t cpu);
    const proto::CacheController &controller(std::size_t cpu) const;

    /** One trace CPU per source, filled cluster-major; runs all to
     *  completion. */
    HierRunResult runTraces(
        const std::vector<trace::RefSource *> &sources);

    /** One scripted CPU per program (CPU i uses ASID i+1). */
    std::vector<std::unique_ptr<cpu::ProgramCpu>>
    runPrograms(const std::vector<cpu::Program> &programs);

    HierRunResult collect(
        const std::vector<cpu::TraceCpu *> &cpus) const;

    /** Idle-processor interrupt service on every board. */
    void attachIdleServicers();

    /**
     * Arm one fault injector over the whole hierarchy: global and
     * local buses, every processor board's FIFO/delivery/copier, and
     * every inter-bus board's FIFOs and global copier. With DmaBurst
     * armed a DMA engine targets scratch frames over the global bus.
     * May be called at most once, before any traffic.
     */
    fault::FaultInjector &
    enableFaultInjection(const fault::FaultSchedule &schedule);

    /** The armed injector, or null if none. */
    fault::FaultInjector *faultInjector() { return injector_.get(); }

    /**
     * Install coherence checkers at both levels: one per cluster bus
     * (full per-controller invariants against the cluster image) and
     * a monitor-only checker on the global bus asserting the
     * single-owner invariant across inter-bus boards. At most once.
     */
    void enableCoherenceCheckers(check::CheckerOptions options = {});

    /** Per-cluster checker (requires enableCoherenceCheckers). */
    check::CoherenceChecker &clusterChecker(std::size_t cluster);
    /** Global-bus checker (requires enableCoherenceCheckers). */
    check::CoherenceChecker &globalChecker();
    /** True once enableCoherenceCheckers() has run. */
    bool checkersEnabled() const { return globalChecker_ != nullptr; }

    /**
     * Install failstop recovery at both levels: one RecoveryManager
     * per cluster bus (CPU boards plus the inter-bus board as a
     * liveness-only bridge — a dead bridge strands every remote frame)
     * and one on the global bus treating each inter-bus board's global
     * monitor as a protocol client whose Protect frames are reclaimed
     * into main memory. Controllers get their cluster's manager as
     * dead-owner oracle. With checkers installed, every completed
     * reclaim triggers the matching single-owner sweep. At most once.
     */
    void enableRecovery(recover::RecoveryConfig options = {});

    /** Per-cluster recovery manager (requires enableRecovery). */
    recover::RecoveryManager &clusterRecovery(std::size_t cluster);
    /** True once enableRecovery() has run. */
    bool recoveryEnabled() const { return globalRecovery_ != nullptr; }
    const recover::RecoveryManager &
    clusterRecovery(std::size_t cluster) const
    {
        return *clusterRecoveries_.at(cluster);
    }
    /** Global-bus recovery manager, or null if none installed. */
    recover::RecoveryManager *globalRecovery()
    {
        return globalRecovery_.get();
    }
    const recover::RecoveryManager *globalRecovery() const
    {
        return globalRecovery_.get();
    }

    /**
     * Install NVRAM-shadowed frame checkpoints at both levels: one
     * per cluster (shadowing the cluster image off its local bus) and
     * one global (shadowing main memory off the global bus). Recovery
     * managers — installed before or after — restore reclaimed frames
     * from the matching store, driving pages_lost to zero at every
     * level. @p asid as in VmpSystem::enableFrameCheckpoint. At most
     * once, before any traffic.
     */
    void enableFrameCheckpoint(Asid asid = 0xFE);

    /** True once enableFrameCheckpoint() ran. */
    bool frameCheckpointEnabled() const
    {
        return globalCheckpointer_ != nullptr;
    }

    /**
     * Arm the observability subsystem over the whole hierarchy: tracks
     * "global_bus", per-cluster "cK.bus" and "cK.ibc", per-CPU "cpuN",
     * and one shared "recover" track. Same guarantees as the flat
     * system: pure observation, bit-identical simulated time, at most
     * once, before any traffic.
     */
    obs::EventTracer &enableTracing(obs::TraceConfig config = {});

    /** The armed tracer, or null if tracing is off. */
    obs::EventTracer *tracer() { return tracer_.get(); }
    const obs::EventTracer *tracer() const { return tracer_.get(); }

    /** The attached miss profiler, or null. */
    obs::MissProfiler *missProfiler() { return profiler_.get(); }
    const obs::MissProfiler *missProfiler() const
    {
        return profiler_.get();
    }

    /**
     * Failstop CPU board @p cpu (flat index) at tick @p at; the board's
     * monitor hardware keeps driving its cluster bus. Without
     * enableRecovery() its stale entries wedge the cluster.
     */
    void killBoard(std::uint32_t cpu, Tick at);
    /** Hot-rejoin CPU board @p cpu at tick @p at (cold restart). */
    void rejoinBoard(std::uint32_t cpu, Tick at);

    /**
     * Failstop cluster @p cluster's inter-bus cache board at tick
     * @p at: its service software dies, stranding the cluster's remote
     * misses and its global Protect frames. Inter-bus boards do not
     * hot-rejoin.
     */
    void killInterBusBoard(std::uint32_t cluster, Tick at);

    /**
     * Register every cluster's inter-bus board as a client of one
     * machine-wide memory-budget controller: the cluster's global-
     * shadow footprint is its occupancy and its global fetch/upgrade
     * completions are its fault pressure. @p config.totalFrames of 0
     * defaults to the main-memory frame count. The recurring epoch is
     * NOT started — call start() (or rebalance() manually) so that
     * unarmed runs stay event-free. At most once.
     */
    backing::BudgetController &
    enableClusterBudget(backing::BudgetConfig config = {});

    /** The cluster budget controller, or null if none installed. */
    backing::BudgetController *clusterBudget() { return budget_.get(); }
    const backing::BudgetController *clusterBudget() const
    {
        return budget_.get();
    }

    /**
     * Full sweep on every installed checker (quiescence only).
     * @return violations found by this sweep, summed over checkers.
     */
    std::uint64_t checkFullAll();

    /** Total violations across all checkers so far. */
    std::uint64_t totalViolations() const;

    /** Livelock watchdog on every processor controller. */
    void setWatchdog(std::uint64_t maxRetries,
                     proto::CacheController::WatchdogHandler handler = {});

    /** gem5-style dump of every component's statistics. */
    void dumpStats(std::ostream &os) const;
    /** {"global_bus": {...}, "c0.bus": {...}, "c0.ibc": {...},
     *   "cpu0": {...}, ...} */
    Json statsJson() const;

  private:
    struct Cluster;

    /** Rejoin body (defers itself while the cluster is reclaiming). */
    void doRejoin(std::uint32_t cpu);
    /** Turn one scheduled partial-failure spec into onset/clear events. */
    void armPartialFault(const fault::PartialFaultSpec &spec);

    HierConfig cfg_;
    EventQueue events_;
    mem::PhysMem memory_;
    mem::VmeBus globalBus_;
    std::unique_ptr<proto::DemandTranslator> ownedTranslator_;
    proto::Translator *translator_;
    std::vector<std::unique_ptr<Cluster>> clusters_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::vector<std::unique_ptr<check::CoherenceChecker>>
        clusterCheckers_;
    std::unique_ptr<check::CoherenceChecker> globalChecker_;
    std::vector<std::unique_ptr<recover::RecoveryManager>>
        clusterRecoveries_;
    std::unique_ptr<recover::RecoveryManager> globalRecovery_;
    std::vector<std::unique_ptr<backing::PageStore>>
        clusterCheckpointStores_;
    std::vector<std::unique_ptr<backing::FrameCheckpointer>>
        clusterCheckpointers_;
    std::unique_ptr<backing::PageStore> globalCheckpointStore_;
    std::unique_ptr<backing::FrameCheckpointer> globalCheckpointer_;
    std::unique_ptr<backing::BudgetController> budget_;
    std::unique_ptr<obs::EventTracer> tracer_;
    std::unique_ptr<obs::MissProfiler> profiler_;
    /** Track id recovery events land on (valid while tracer_ != null). */
    std::uint16_t recoverTrack_ = 0;
    /** Raw CPU handles while runTraces is in flight. */
    std::vector<cpu::TraceCpu *> activeCpus_;
};

} // namespace vmp::core

#endif // VMP_CORE_HIER_SYSTEM_HH
