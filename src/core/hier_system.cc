#include "core/hier_system.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "sim/debug.hh"
#include "sim/logging.hh"
#include "trace/synthetic.hh"

namespace vmp::core
{

VmpConfig
HierConfig::clusterConfig() const
{
    VmpConfig cfg;
    cfg.processors = cpusPerCluster;
    cfg.cache = cache;
    cfg.memBytes = memBytes;
    cfg.busTiming = localBusTiming;
    cfg.arbitration = localArbitration;
    cfg.swTiming = swTiming;
    cfg.cpuTiming = cpuTiming;
    cfg.fifoCapacity = fifoCapacity;
    return cfg;
}

void
HierConfig::check() const
{
    cache.check();
    if (clusters == 0 || clusters > 16)
        fatal("hier: clusters must be in [1, 16]");
    if (cpusPerCluster == 0 || cpusPerCluster > 8)
        fatal("hier: cpusPerCluster must be in [1, 8]");
    if (memBytes == 0 || memBytes % cache.pageBytes != 0)
        fatal("hier: memory must be a positive multiple of the cache "
              "page size");
    if (fifoCapacity == 0 || ibcFifoCapacity == 0)
        fatal("hier: FIFO capacities must be positive");
    localArbitration.check();
    globalArbitration.check();
}

std::string
HierRunResult::toString() const
{
    std::ostringstream os;
    os << RunResult::toString()
       << " localUtil(mean/peak)=" << meanLocalBusUtilization * 100
       << "/" << peakLocalBusUtilization * 100 << "%"
       << " globalFetches=" << globalFetches
       << " globalWriteBacks=" << globalWriteBacks
       << " refs/s=" << refsPerSec;
    return os.str();
}

/** One cluster: image memory, local bus, inter-bus board, CPUs. */
struct HierVmpSystem::Cluster
{
    Cluster(std::uint32_t index, const HierConfig &cfg,
            EventQueue &events, mem::VmeBus &global_bus,
            proto::Translator &translator)
        : image(cfg.memBytes, cfg.cache.pageBytes),
          bus(events, image, cfg.localBusTiming, cfg.localArbitration),
          ibc(index, cfg.totalCpus() + index, events, bus, global_bus,
              image, cfg.ibcTiming, cfg.ibcFifoCapacity)
    {
        const VmpConfig cluster_cfg = cfg.clusterConfig();
        for (std::uint32_t i = 0; i < cfg.cpusPerCluster; ++i) {
            const CpuId id = index * cfg.cpusPerCluster + i;
            boards.push_back(std::make_unique<ProcessorBoard>(
                id, events, bus, translator, cluster_cfg));
        }
    }

    mem::PhysMem image;
    mem::VmeBus bus;
    hier::InterBusBoard ibc;
    std::vector<std::unique_ptr<ProcessorBoard>> boards;
};

HierVmpSystem::HierVmpSystem(const HierConfig &config,
                             proto::Translator *translator)
    : cfg_(config), memory_(config.memBytes, config.cache.pageBytes),
      globalBus_(events_, memory_, config.globalBusTiming,
                 config.globalArbitration)
{
    cfg_.check();
    if (translator == nullptr) {
        ownedTranslator_ = std::make_unique<proto::DemandTranslator>(
            cfg_.memBytes, cfg_.cache.pageBytes, trace::kernelBase,
            trace::userBase);
        translator_ = ownedTranslator_.get();
    } else {
        translator_ = translator;
    }
    for (std::uint32_t k = 0; k < cfg_.clusters; ++k) {
        clusters_.push_back(std::make_unique<Cluster>(
            k, cfg_, events_, globalBus_, *translator_));
    }
}

HierVmpSystem::~HierVmpSystem() = default;

mem::VmeBus &
HierVmpSystem::localBus(std::size_t cluster)
{
    if (cluster >= clusters_.size())
        panic("cluster index ", cluster, " out of range");
    return clusters_[cluster]->bus;
}

const mem::VmeBus &
HierVmpSystem::localBus(std::size_t cluster) const
{
    if (cluster >= clusters_.size())
        panic("cluster index ", cluster, " out of range");
    return clusters_[cluster]->bus;
}

mem::PhysMem &
HierVmpSystem::image(std::size_t cluster)
{
    if (cluster >= clusters_.size())
        panic("cluster index ", cluster, " out of range");
    return clusters_[cluster]->image;
}

hier::InterBusBoard &
HierVmpSystem::interBusBoard(std::size_t cluster)
{
    if (cluster >= clusters_.size())
        panic("cluster index ", cluster, " out of range");
    return clusters_[cluster]->ibc;
}

const hier::InterBusBoard &
HierVmpSystem::interBusBoard(std::size_t cluster) const
{
    if (cluster >= clusters_.size())
        panic("cluster index ", cluster, " out of range");
    return clusters_[cluster]->ibc;
}

ProcessorBoard &
HierVmpSystem::board(std::size_t cpu)
{
    if (cpu >= cfg_.totalCpus())
        panic("cpu index ", cpu, " out of range");
    return *clusters_[cpu / cfg_.cpusPerCluster]
                ->boards[cpu % cfg_.cpusPerCluster];
}

const ProcessorBoard &
HierVmpSystem::board(std::size_t cpu) const
{
    if (cpu >= cfg_.totalCpus())
        panic("cpu index ", cpu, " out of range");
    return *clusters_[cpu / cfg_.cpusPerCluster]
                ->boards[cpu % cfg_.cpusPerCluster];
}

proto::CacheController &
HierVmpSystem::controller(std::size_t cpu)
{
    return board(cpu).controller;
}

const proto::CacheController &
HierVmpSystem::controller(std::size_t cpu) const
{
    return board(cpu).controller;
}

HierRunResult
HierVmpSystem::runTraces(const std::vector<trace::RefSource *> &sources)
{
    if (sources.size() > cfg_.totalCpus())
        fatal("hier: ", sources.size(), " traces for ",
              cfg_.totalCpus(), " processors");

    std::vector<std::unique_ptr<cpu::TraceCpu>> cpus;
    std::vector<cpu::TraceCpu *> raw;
    std::size_t remaining = sources.size();
    for (std::size_t i = 0; i < sources.size(); ++i) {
        cpus.push_back(std::make_unique<cpu::TraceCpu>(
            static_cast<CpuId>(i), events_, controller(i),
            *sources[i], cfg_.cpuTiming));
        raw.push_back(cpus.back().get());
    }
    activeCpus_ = raw;
    for (auto &c : cpus)
        c->run([&remaining] { --remaining; });
    events_.run();
    // A CPU failstopped mid-trace never fires its completion callback;
    // any other shortfall is a genuine hang.
    std::size_t halted_midrun = 0;
    for (const auto *c : raw) {
        if (c->halted() && !c->finished())
            ++halted_midrun;
    }
    if (remaining != halted_midrun) {
        panic("hier: ", remaining - halted_midrun,
              " trace CPUs did not finish");
    }
    HierRunResult result = collect(raw);
    activeCpus_.clear();
    return result;
}

std::vector<std::unique_ptr<cpu::ProgramCpu>>
HierVmpSystem::runPrograms(const std::vector<cpu::Program> &programs)
{
    if (programs.size() > cfg_.totalCpus())
        fatal("hier: ", programs.size(), " programs for ",
              cfg_.totalCpus(), " processors");

    std::vector<std::unique_ptr<cpu::ProgramCpu>> cpus;
    std::size_t remaining = programs.size();
    for (std::size_t i = 0; i < programs.size(); ++i) {
        cpus.push_back(std::make_unique<cpu::ProgramCpu>(
            static_cast<CpuId>(i), events_, controller(i),
            static_cast<Asid>(i + 1), programs[i], cfg_.cpuTiming));
    }
    for (auto &c : cpus)
        c->run([&remaining] { --remaining; });
    events_.run();
    if (remaining != 0)
        panic("hier: ", remaining, " program CPUs did not halt");
    return cpus;
}

void
HierVmpSystem::attachIdleServicers()
{
    for (auto &cluster : clusters_) {
        for (auto &board : cluster->boards) {
            auto *controller = &board->controller;
            controller->busMonitor().setInterruptLine(
                [this, controller] {
                    events_.scheduleIn(1, [controller] {
                        controller->serviceInterrupts([] {});
                    }, "idle-service");
                });
        }
    }
}

fault::FaultInjector &
HierVmpSystem::enableFaultInjection(const fault::FaultSchedule &schedule)
{
    if (injector_)
        fatal("hier: fault injection enabled twice");
    injector_ = std::make_unique<fault::FaultInjector>(events_, schedule);
    globalBus_.setFaultHooks(injector_.get());
    for (auto &cluster : clusters_) {
        cluster->bus.setFaultHooks(injector_.get());
        cluster->ibc.setFaultHooks(injector_.get());
        for (auto &board : cluster->boards) {
            board->monitor.setFaultHooks(injector_.get(), &events_);
            board->controller.setFaultHooks(injector_.get());
        }
    }
    if (schedule.arms(fault::FaultKind::DmaBurst)) {
        injector_->attachDmaTarget(globalBus_,
                                   cfg_.totalCpus() + cfg_.clusters + 64,
                                   8ull * cfg_.cache.pageBytes,
                                   cfg_.cache.pageBytes, 8);
    }
    // Board crashes are time-driven: turn each schedule entry into
    // kill/rejoin events now (deterministic, no RNG draw).
    for (const auto &crash : injector_->schedule().crashes) {
        if (crash.interBus) {
            if (crash.rejoinAt != 0)
                fatal("hier: inter-bus boards do not hot-rejoin");
            killInterBusBoard(crash.board, crash.at);
        } else {
            killBoard(crash.board, crash.at);
            if (crash.rejoinAt != 0)
                rejoinBoard(crash.board, crash.rejoinAt);
        }
    }
    // Partial failures (wedge/stuck/slow) are likewise time-driven;
    // babble is opportunity-driven through the injectFifoBabble seam.
    for (const auto &part : injector_->schedule().partials)
        armPartialFault(part);
    return *injector_;
}

void
HierVmpSystem::armPartialFault(const fault::PartialFaultSpec &spec)
{
    if (spec.interBus) {
        // Wedged-IBC variant: the bridge's service pump stops draining
        // both FIFOs while its global monitor keeps aborting.
        if (spec.kind != fault::FaultKind::MonitorWedge)
            fatal("hier: only wedgeInterBus() partial faults target "
                  "inter-bus boards");
        if (spec.board >= cfg_.clusters)
            fatal("hier: wedgeInterBus(", spec.board, ") out of range");
        const std::uint32_t k = spec.board;
        events_.schedule(spec.at, [this, k] {
            hier::InterBusBoard &ibc = clusters_[k]->ibc;
            if (ibc.dead())
                return;
            VMP_DTRACE(debug::Fault, events_.now(), "cluster ", k,
                       " inter-bus board wedged");
            ibc.setWedged(true);
            injector_->notePartialFault(fault::FaultKind::MonitorWedge);
        }, "partial-fault");
        if (spec.clearAt != 0) {
            events_.schedule(spec.clearAt, [this, k] {
                clusters_[k]->ibc.setWedged(false);
            }, "partial-clear");
        }
        return;
    }
    if (spec.board >= cfg_.totalCpus())
        fatal("hier: partial fault on board ", spec.board,
              " out of range");
    if (spec.kind == fault::FaultKind::FifoBabble)
        return; // drawn per bus transaction inside the injector
    const std::uint32_t cpu = spec.board;
    events_.schedule(spec.at, [this, cpu, spec] {
        ProcessorBoard &b = board(cpu);
        if (b.controller.dead())
            return;
        VMP_DTRACE(debug::Fault, events_.now(), "board ", cpu,
                   " partial fault onset: ",
                   fault::faultKindName(spec.kind));
        switch (spec.kind) {
        case fault::FaultKind::MonitorWedge:
            b.controller.setWedged(true);
            break;
        case fault::FaultKind::ActionTableStuck:
            b.monitor.setTableStuck(true);
            break;
        case fault::FaultKind::SlowBoard:
            b.controller.setServiceSlowdown(spec.factor);
            break;
        default:
            fatal("hier: unexpected partial fault kind");
        }
        injector_->notePartialFault(spec.kind);
    }, "partial-fault");
    if (spec.clearAt == 0)
        return;
    events_.schedule(spec.clearAt, [this, cpu, spec] {
        ProcessorBoard &b = board(cpu);
        switch (spec.kind) {
        case fault::FaultKind::MonitorWedge:
            b.controller.setWedged(false);
            break;
        case fault::FaultKind::ActionTableStuck:
            b.monitor.setTableStuck(false);
            break;
        case fault::FaultKind::SlowBoard:
            b.controller.setServiceSlowdown(1);
            break;
        default:
            break;
        }
    }, "partial-clear");
}

obs::EventTracer &
HierVmpSystem::enableTracing(obs::TraceConfig config)
{
    if (tracer_)
        fatal("hier: tracing enabled twice");
    tracer_ = std::make_unique<obs::EventTracer>(config.ringCapacity);
    if (config.profileMisses) {
        profiler_ = std::make_unique<obs::MissProfiler>();
        tracer_->addSink(profiler_->sink());
    }
    const std::uint16_t global_track =
        tracer_->registerTrack("global_bus");
    globalBus_.setTracer(tracer_.get(), global_track);
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
        Cluster &cluster = *clusters_[k];
        const std::uint16_t bus_track = tracer_->registerTrack(
            "c" + std::to_string(k) + ".bus");
        cluster.bus.setTracer(tracer_.get(), bus_track);
        const std::uint16_t ibc_track = tracer_->registerTrack(
            "c" + std::to_string(k) + ".ibc");
        cluster.ibc.setTracer(tracer_.get(), ibc_track);
        for (std::size_t i = 0; i < cluster.boards.size(); ++i) {
            const auto id = k * cfg_.cpusPerCluster + i;
            const std::uint16_t track = tracer_->registerTrack(
                "cpu" + std::to_string(id));
            cluster.boards[i]->monitor.setTracer(tracer_.get(), track,
                                                 &events_);
            cluster.boards[i]->controller.setTracer(tracer_.get(),
                                                    track);
        }
    }
    recoverTrack_ = tracer_->registerTrack("recover");
    for (auto &manager : clusterRecoveries_)
        manager->setTracer(tracer_.get(), recoverTrack_);
    if (globalRecovery_)
        globalRecovery_->setTracer(tracer_.get(), recoverTrack_);
    VMP_DTRACE(debug::Obs, events_.now(), "hier tracing armed: ",
               tracer_->trackCount(), " tracks, ring capacity ",
               tracer_->ringCapacity());
    return *tracer_;
}

void
HierVmpSystem::enableRecovery(recover::RecoveryConfig options)
{
    if (globalRecovery_ || !clusterRecoveries_.empty())
        fatal("hier: recovery enabled twice");
    // One manager per cluster bus: the CPU boards are full reclaim
    // targets and the inter-bus board is a liveness-only bridge.
    for (std::uint32_t k = 0; k < cfg_.clusters; ++k) {
        Cluster &cluster = *clusters_[k];
        auto manager = std::make_unique<recover::RecoveryManager>(
            events_, cluster.bus, cluster.image, options);
        for (std::uint32_t i = 0; i < cfg_.cpusPerCluster; ++i) {
            auto *controller = &cluster.boards[i]->controller;
            auto *monitor = &cluster.boards[i]->monitor;
            const auto cpu =
                static_cast<std::uint32_t>(k * cfg_.cpusPerCluster + i);
            manager->addBoard(cpu, cluster.boards[i]->monitor,
                              [controller] {
                                  return !controller->dead();
                              });
            controller->setDeadOwnerOracle(manager.get());
            manager->detector().setHealthFn(
                cpu, [controller, monitor] {
                    recover::HealthReport report;
                    report.alive = !controller->dead();
                    report.responsive =
                        !controller->dead() && !controller->wedged();
                    report.progressEpoch = controller->serviceEpoch();
                    report.pendingWords =
                        monitor->fifo().size() +
                        (monitor->fifo().overflowed() ? 1 : 0);
                    report.wordsServiced =
                        controller->wordsServiced().value();
                    report.spuriousWords =
                        controller->spuriousWords().value();
                    report.serviceBusyNs =
                        controller->serviceCpuTicks();
                    report.fifoPushed =
                        monitor->fifo().pushed().value();
                    return report;
                });
        }
        // Quarantine hooks mirror the flat system's: park the fenced
        // CPU's reference stream, cold-restart on unfence.
        manager->setFenceHooks(
            [this](std::uint32_t cpu) {
                if (cpu < activeCpus_.size() &&
                    activeCpus_[cpu] != nullptr) {
                    activeCpus_[cpu]->requestFailstop();
                }
            },
            [this](std::uint32_t cpu) {
                ProcessorBoard &b = board(cpu);
                while (b.monitor.fifo().pop().has_value()) {
                }
                b.monitor.fifo().clearOverflow();
                if (!b.controller.dead())
                    b.controller.failstop();
                b.controller.rejoin();
                if (cpu < activeCpus_.size() &&
                    activeCpus_[cpu] != nullptr) {
                    activeCpus_[cpu]->resume();
                }
            });
        auto *ibc = &cluster.ibc;
        manager->addBridge(ibc->localMasterId(),
                           [ibc] { return !ibc->dead(); });
        manager->setPostReclaimHook([this, k] {
            if (k < clusterCheckers_.size())
                clusterCheckers_[k]->checkOwnersSweep();
        });
        if (tracer_)
            manager->setTracer(tracer_.get(), recoverTrack_);
        if (k < clusterCheckpointStores_.size())
            manager->setBackingStore(clusterCheckpointStores_[k].get(),
                                     clusterCheckpointers_[k]->asid());
        manager->install();
        clusterRecoveries_.push_back(std::move(manager));
    }
    // Global level: the inter-bus boards are the protocol clients;
    // their global monitors are the reclaim targets.
    globalRecovery_ = std::make_unique<recover::RecoveryManager>(
        events_, globalBus_, memory_, options);
    for (std::uint32_t k = 0; k < cfg_.clusters; ++k) {
        auto *ibc = &clusters_[k]->ibc;
        globalRecovery_->addBoard(ibc->clusterIndex(),
                                  ibc->globalMonitor(),
                                  [ibc] { return !ibc->dead(); });
        // Wedged-IBC witness: a wedged pump answers alive but its
        // progress epoch freezes while words pend. No latency or
        // babble witness for bridges (serviceBusyNs stays 0).
        globalRecovery_->detector().setHealthFn(
            ibc->clusterIndex(), [ibc] {
                recover::HealthReport report;
                report.alive = !ibc->dead();
                report.responsive = !ibc->dead() && !ibc->wedged();
                report.progressEpoch = ibc->serviceEpoch();
                report.pendingWords = ibc->pendingWords();
                report.wordsServiced = ibc->wordsLocal().value() +
                    ibc->wordsGlobal().value();
                report.spuriousWords = ibc->spuriousWords().value();
                report.fifoPushed =
                    ibc->globalMonitor().fifo().pushed().value();
                return report;
            });
    }
    globalRecovery_->setPostReclaimHook([this] {
        if (globalChecker_)
            globalChecker_->checkOwnersSweep();
    });
    if (tracer_)
        globalRecovery_->setTracer(tracer_.get(), recoverTrack_);
    if (globalCheckpointStore_)
        globalRecovery_->setBackingStore(globalCheckpointStore_.get(),
                                         globalCheckpointer_->asid());
    globalRecovery_->install();
}

void
HierVmpSystem::enableFrameCheckpoint(Asid asid)
{
    if (globalCheckpointer_)
        fatal("hier: frame checkpoint enabled twice");
    // One shadow store per cluster image, written off the local bus,
    // plus one for main memory off the global bus. All are latency-0
    // PageStores: the shadow write rides the memory board's own store
    // path; recovery still pays the restore DMA.
    for (std::uint32_t k = 0; k < cfg_.clusters; ++k) {
        Cluster &cluster = *clusters_[k];
        clusterCheckpointStores_.push_back(
            std::make_unique<backing::PageStore>(
                0, cluster.image.pageBytes()));
        clusterCheckpointers_.push_back(
            std::make_unique<backing::FrameCheckpointer>(
                cluster.image, *clusterCheckpointStores_.back(), asid));
        clusterCheckpointers_.back()->install(cluster.bus);
        if (k < clusterRecoveries_.size())
            clusterRecoveries_[k]->setBackingStore(
                clusterCheckpointStores_.back().get(), asid);
    }
    globalCheckpointStore_ = std::make_unique<backing::PageStore>(
        0, memory_.pageBytes());
    globalCheckpointer_ = std::make_unique<backing::FrameCheckpointer>(
        memory_, *globalCheckpointStore_, asid);
    globalCheckpointer_->install(globalBus_);
    if (globalRecovery_)
        globalRecovery_->setBackingStore(globalCheckpointStore_.get(),
                                         asid);
}

backing::BudgetController &
HierVmpSystem::enableClusterBudget(backing::BudgetConfig config)
{
    if (budget_)
        fatal("hier: cluster budget enabled twice");
    if (config.totalFrames == 0) {
        config.totalFrames = static_cast<std::uint32_t>(
            cfg_.memBytes / cfg_.cache.pageBytes);
    }
    budget_ = std::make_unique<backing::BudgetController>(events_,
                                                          config);
    for (std::uint32_t k = 0; k < cfg_.clusters; ++k) {
        const std::uint32_t client =
            budget_->addClient("cluster" + std::to_string(k));
        auto *controller = budget_.get();
        clusters_[k]->ibc.setBudgetClient(
            [controller, client] { controller->noteFault(client); },
            [controller, client](std::int32_t delta) {
                controller->noteUse(client, delta);
            });
    }
    // Deliberately not start()ed: unarmed epochs would add recurring
    // events (and the run would never drain). Callers opt in.
    return *budget_;
}

recover::RecoveryManager &
HierVmpSystem::clusterRecovery(std::size_t cluster)
{
    if (cluster >= clusterRecoveries_.size())
        panic("cluster recovery ", cluster,
              " out of range (recovery enabled?)");
    return *clusterRecoveries_[cluster];
}

void
HierVmpSystem::killBoard(std::uint32_t cpu, Tick at)
{
    if (cpu >= cfg_.totalCpus())
        fatal("hier: killBoard(", cpu, ") out of range");
    events_.schedule(at, [this, cpu] {
        ProcessorBoard &b = board(cpu);
        if (b.controller.dead())
            return;
        VMP_DTRACE(debug::Recover, events_.now(), "killing board ",
                   cpu);
        if (cpu < activeCpus_.size() && activeCpus_[cpu] != nullptr)
            activeCpus_[cpu]->requestFailstop();
        b.controller.failstop();
        if (injector_)
            injector_->noteBoardCrash();
    }, "kill-board");
}

void
HierVmpSystem::rejoinBoard(std::uint32_t cpu, Tick at)
{
    if (cpu >= cfg_.totalCpus())
        fatal("hier: rejoinBoard(", cpu, ") out of range");
    events_.schedule(at, [this, cpu] { doRejoin(cpu); },
                     "rejoin-board");
}

void
HierVmpSystem::doRejoin(std::uint32_t cpu)
{
    ProcessorBoard &b = board(cpu);
    if (!b.controller.dead())
        return;
    const std::size_t k = cpu / cfg_.cpusPerCluster;
    recover::RecoveryManager *manager = k < clusterRecoveries_.size()
        ? clusterRecoveries_[k].get()
        : nullptr;
    if (manager != nullptr && manager->recovering()) {
        events_.scheduleIn(usec(10), [this, cpu] { doRejoin(cpu); },
                          "rejoin-board");
        return;
    }
    VMP_DTRACE(debug::Recover, events_.now(), "board ", cpu,
               " hot-rejoining");
    b.monitor.table().clear();
    while (b.monitor.fifo().pop().has_value()) {
    }
    b.monitor.fifo().clearOverflow();
    b.monitor.setMasked(false);
    b.controller.rejoin();
    if (manager != nullptr)
        manager->markRejoined(cpu);
    if (cpu < activeCpus_.size() && activeCpus_[cpu] != nullptr)
        activeCpus_[cpu]->resume();
}

void
HierVmpSystem::killInterBusBoard(std::uint32_t cluster, Tick at)
{
    if (cluster >= cfg_.clusters)
        fatal("hier: killInterBusBoard(", cluster, ") out of range");
    events_.schedule(at, [this, cluster] {
        hier::InterBusBoard &ibc = clusters_[cluster]->ibc;
        if (ibc.dead())
            return;
        VMP_DTRACE(debug::Recover, events_.now(),
                   "killing inter-bus board of cluster ", cluster);
        ibc.failstop();
        if (injector_)
            injector_->noteBoardCrash();
    }, "kill-ibc");
}

void
HierVmpSystem::enableCoherenceCheckers(check::CheckerOptions options)
{
    if (globalChecker_)
        fatal("hier: coherence checkers enabled twice");
    for (auto &cluster : clusters_) {
        auto checker = std::make_unique<check::CoherenceChecker>(
            cluster->bus, cluster->image, options);
        for (auto &board : cluster->boards)
            checker->addController(board->controller);
        checker->install();
        clusterCheckers_.push_back(std::move(checker));
    }
    // Global level: the inter-bus boards are the protocol clients, so
    // only the hardware single-owner invariant is checkable there.
    globalChecker_ = std::make_unique<check::CoherenceChecker>(
        globalBus_, memory_, options);
    for (auto &cluster : clusters_)
        globalChecker_->addMonitor(cluster->ibc.globalMonitor());
    globalChecker_->install();
}

check::CoherenceChecker &
HierVmpSystem::clusterChecker(std::size_t cluster)
{
    if (cluster >= clusterCheckers_.size())
        panic("cluster checker ", cluster,
              " out of range (checkers enabled?)");
    return *clusterCheckers_[cluster];
}

check::CoherenceChecker &
HierVmpSystem::globalChecker()
{
    if (!globalChecker_)
        panic("global checker requested before "
              "enableCoherenceCheckers()");
    return *globalChecker_;
}

std::uint64_t
HierVmpSystem::checkFullAll()
{
    std::uint64_t found = 0;
    for (auto &checker : clusterCheckers_)
        found += checker->checkFull();
    if (globalChecker_)
        found += globalChecker_->checkFull();
    return found;
}

std::uint64_t
HierVmpSystem::totalViolations() const
{
    std::uint64_t total = 0;
    for (const auto &checker : clusterCheckers_)
        total += checker->violations().value();
    if (globalChecker_)
        total += globalChecker_->violations().value();
    return total;
}

void
HierVmpSystem::setWatchdog(std::uint64_t maxRetries,
                           proto::CacheController::WatchdogHandler handler)
{
    for (auto &cluster : clusters_)
        for (auto &board : cluster->boards)
            board->controller.setWatchdog(maxRetries, handler);
}

HierRunResult
HierVmpSystem::collect(const std::vector<cpu::TraceCpu *> &cpus) const
{
    HierRunResult result;
    result.elapsed = events_.now();
    double perf_sum = 0.0;
    for (const auto *c : cpus) {
        result.totalRefs += c->refsRetired().value();
        perf_sum += c->performance();
    }
    double local_util_sum = 0.0;
    for (const auto &cluster : clusters_) {
        for (const auto &b : cluster->boards) {
            result.totalMisses += b->controller.misses().value();
            result.writeBacks += b->controller.writeBacks().value();
        }
        const double util = cluster->bus.utilization();
        local_util_sum += util;
        result.busUpgrades +=
            cluster->bus.countOf(mem::TxType::AssertOwnership).value();
        result.peakLocalBusUtilization =
            std::max(result.peakLocalBusUtilization, util);
        result.globalFetches += cluster->ibc.globalFetches();
        result.globalWriteBacks +=
            cluster->ibc.globalWriteBacks().value();
    }
    result.missRatio = result.totalRefs == 0
        ? 0.0
        : static_cast<double>(result.totalMisses) /
            static_cast<double>(result.totalRefs);
    result.performance =
        cpus.empty() ? 0.0 : perf_sum / static_cast<double>(cpus.size());
    result.busUtilization = globalBus_.utilization();
    result.meanLocalBusUtilization = clusters_.empty()
        ? 0.0
        : local_util_sum / static_cast<double>(clusters_.size());
    result.busAborts = globalBus_.aborts().value();
    result.refsPerSec = result.elapsed == 0
        ? 0.0
        : static_cast<double>(result.totalRefs) /
            (static_cast<double>(result.elapsed) * 1e-9);
    return result;
}

void
HierVmpSystem::dumpStats(std::ostream &os) const
{
    StatGroup global_group("global_bus");
    globalBus_.registerStats(global_group);
    global_group.dump(os);
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
        StatGroup bus_group("c" + std::to_string(k) + ".bus");
        clusters_[k]->bus.registerStats(bus_group);
        bus_group.dump(os);
        StatGroup ibc_group("c" + std::to_string(k) + ".ibc");
        clusters_[k]->ibc.registerStats(ibc_group);
        ibc_group.dump(os);
        for (std::size_t i = 0; i < clusters_[k]->boards.size(); ++i) {
            const auto id = k * cfg_.cpusPerCluster + i;
            StatGroup cpu_group("cpu" + std::to_string(id));
            clusters_[k]->boards[i]->controller.registerStats(
                cpu_group);
            clusters_[k]->boards[i]->cache.registerStats(cpu_group);
            cpu_group.dump(os);
        }
    }
    if (injector_) {
        StatGroup fault_group("fault");
        injector_->registerStats(fault_group);
        fault_group.dump(os);
    }
    for (std::size_t k = 0; k < clusterCheckers_.size(); ++k) {
        StatGroup check_group("c" + std::to_string(k) + ".check");
        clusterCheckers_[k]->registerStats(check_group);
        check_group.dump(os);
    }
    if (globalChecker_) {
        StatGroup check_group("check.global");
        globalChecker_->registerStats(check_group);
        check_group.dump(os);
    }
    for (std::size_t k = 0; k < clusterRecoveries_.size(); ++k) {
        StatGroup recover_group("c" + std::to_string(k) + ".recover");
        clusterRecoveries_[k]->registerStats(recover_group);
        recover_group.dump(os);
    }
    if (globalRecovery_) {
        StatGroup recover_group("recover.global");
        globalRecovery_->registerStats(recover_group);
        recover_group.dump(os);
    }
    for (std::size_t k = 0; k < clusterCheckpointers_.size(); ++k) {
        StatGroup backing_group("c" + std::to_string(k) + ".backing");
        clusterCheckpointers_[k]->registerStats(backing_group);
        backing_group.dump(os);
    }
    if (globalCheckpointer_) {
        StatGroup backing_group("backing.global");
        globalCheckpointer_->registerStats(backing_group);
        backing_group.dump(os);
    }
    if (tracer_) {
        StatGroup obs_group("obs");
        tracer_->registerStats(obs_group);
        if (profiler_)
            profiler_->registerStats(obs_group);
        obs_group.dump(os);
    }
}

Json
HierVmpSystem::statsJson() const
{
    std::vector<std::unique_ptr<StatGroup>> groups;
    StatRegistry registry;

    groups.push_back(std::make_unique<StatGroup>("global_bus"));
    globalBus_.registerStats(*groups.back());
    registry.add(*groups.back());
    for (std::size_t k = 0; k < clusters_.size(); ++k) {
        groups.push_back(std::make_unique<StatGroup>(
            "c" + std::to_string(k) + ".bus"));
        clusters_[k]->bus.registerStats(*groups.back());
        registry.add(*groups.back());
        groups.push_back(std::make_unique<StatGroup>(
            "c" + std::to_string(k) + ".ibc"));
        clusters_[k]->ibc.registerStats(*groups.back());
        registry.add(*groups.back());
        for (std::size_t i = 0; i < clusters_[k]->boards.size(); ++i) {
            const auto id = k * cfg_.cpusPerCluster + i;
            groups.push_back(std::make_unique<StatGroup>(
                "cpu" + std::to_string(id)));
            clusters_[k]->boards[i]->controller.registerStats(
                *groups.back());
            clusters_[k]->boards[i]->cache.registerStats(
                *groups.back());
            registry.add(*groups.back());
        }
    }
    if (injector_) {
        groups.push_back(std::make_unique<StatGroup>("fault"));
        injector_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    for (std::size_t k = 0; k < clusterCheckers_.size(); ++k) {
        groups.push_back(std::make_unique<StatGroup>(
            "c" + std::to_string(k) + ".check"));
        clusterCheckers_[k]->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (globalChecker_) {
        groups.push_back(std::make_unique<StatGroup>("check.global"));
        globalChecker_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    for (std::size_t k = 0; k < clusterRecoveries_.size(); ++k) {
        groups.push_back(std::make_unique<StatGroup>(
            "c" + std::to_string(k) + ".recover"));
        clusterRecoveries_[k]->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (globalRecovery_) {
        groups.push_back(std::make_unique<StatGroup>("recover.global"));
        globalRecovery_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    for (std::size_t k = 0; k < clusterCheckpointers_.size(); ++k) {
        groups.push_back(std::make_unique<StatGroup>(
            "c" + std::to_string(k) + ".backing"));
        clusterCheckpointers_[k]->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (globalCheckpointer_) {
        groups.push_back(std::make_unique<StatGroup>("backing.global"));
        globalCheckpointer_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    if (tracer_) {
        groups.push_back(std::make_unique<StatGroup>("obs"));
        tracer_->registerStats(*groups.back());
        if (profiler_)
            profiler_->registerStats(*groups.back());
        registry.add(*groups.back());
    }
    return registry.toJson();
}

} // namespace vmp::core
