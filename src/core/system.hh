/**
 * @file
 * VmpSystem: the full machine of Section 4 — a shared VMEbus, central
 * memory, and several processor boards, each a 68020-rate CPU model
 * with virtually addressed cache, bus monitor and software cache
 * controller. This is the top-level object of the library's public
 * API: configure it, hand each processor a trace or a scripted
 * program, run, and read the statistics back.
 */

#ifndef VMP_CORE_SYSTEM_HH
#define VMP_CORE_SYSTEM_HH

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "backing/checkpoint.hh"
#include "backing/page_store.hh"
#include "cache/cache.hh"
#include "check/coherence_checker.hh"
#include "cpu/program_cpu.hh"
#include "cpu/timing.hh"
#include "cpu/trace_cpu.hh"
#include "fault/injector.hh"
#include "mem/phys_mem.hh"
#include "mem/vme_bus.hh"
#include "monitor/bus_monitor.hh"
#include "obs/event_tracer.hh"
#include "obs/miss_profiler.hh"
#include "proto/controller.hh"
#include "proto/translator.hh"
#include "recover/recovery.hh"
#include "sim/event.hh"
#include "sim/json.hh"
#include "sim/stats.hh"
#include "trace/ref.hh"

namespace vmp::core
{

/** Whole-machine configuration. */
struct VmpConfig
{
    /** Number of processor boards on the bus. */
    std::uint32_t processors = 1;
    /** Per-processor cache geometry (prototype: 256 KiB, 4-way). */
    cache::CacheConfig cache{256, 4, 256, true};
    /** Central memory size (prototype maximum: 8 MiB). */
    std::uint64_t memBytes = MiB(8);
    /** Bus and memory-board timing. */
    mem::BusTiming busTiming{};
    /** Bus arbitration discipline (default: plain FIFO). */
    mem::ArbitrationConfig arbitration{};
    /** Software miss-handler instruction budget. */
    proto::SoftwareTiming swTiming{};
    /** Processor execution rate. */
    cpu::M68020Timing cpuTiming{};
    /** Bus-monitor interrupt FIFO depth. */
    std::size_t fifoCapacity = 128;

    void check() const;
};

/** One processor board: cache + monitor + controller (+ CPU, if any). */
struct ProcessorBoard
{
    ProcessorBoard(CpuId id, EventQueue &events, mem::VmeBus &bus,
                   proto::Translator &translator,
                   const VmpConfig &config);

    cache::Cache cache;
    monitor::BusMonitor monitor;
    proto::CacheController controller;
};

/** Aggregate results of a run. */
struct RunResult
{
    Tick elapsed = 0;
    std::uint64_t totalRefs = 0;
    std::uint64_t totalMisses = 0;
    double missRatio = 0.0;
    /** Mean per-processor performance, normalized (Figure 3 metric). */
    double performance = 0.0;
    /** Bus utilization over the run. */
    double busUtilization = 0.0;
    std::uint64_t busAborts = 0;
    std::uint64_t writeBacks = 0;
    /** Completed AssertOwnership transactions (upgrade misses); with
     *  writeBacks and missRatio this is the measured
     *  analytic::BusLoadProfile of the run. */
    std::uint64_t busUpgrades = 0;

    std::string toString() const;
};

/** The machine. */
class VmpSystem
{
  public:
    /**
     * Build a system. If @p translator is null an internal
     * DemandTranslator is used (kernel region shared across ASIDs).
     */
    explicit VmpSystem(const VmpConfig &config,
                       proto::Translator *translator = nullptr);

    const VmpConfig &config() const { return cfg_; }
    EventQueue &events() { return events_; }
    const EventQueue &events() const { return events_; }
    mem::PhysMem &memory() { return memory_; }
    const mem::PhysMem &memory() const { return memory_; }
    mem::VmeBus &bus() { return bus_; }
    const mem::VmeBus &bus() const { return bus_; }
    std::uint32_t processors() const;
    ProcessorBoard &board(std::size_t index);
    const ProcessorBoard &board(std::size_t index) const;
    proto::CacheController &controller(std::size_t index);
    const proto::CacheController &controller(std::size_t index) const;

    /**
     * Attach one trace-driven CPU per source and run all of them to
     * completion (each stops when its source is exhausted).
     */
    RunResult runTraces(
        const std::vector<trace::RefSource *> &sources);

    /**
     * Attach one scripted CPU per program (CPU i uses ASID i+1) and
     * run until every program halts. Returns the CPUs for register
     * inspection. Keep them alive while continuing to use the system:
     * even halted processors service their bus monitors, and pages
     * they own privately are unreachable to other masters otherwise.
     */
    std::vector<std::unique_ptr<cpu::ProgramCpu>>
    runPrograms(const std::vector<cpu::Program> &programs);

    /** Collect aggregate statistics for the run so far. */
    RunResult collect(const std::vector<cpu::TraceCpu *> &cpus) const;

    /**
     * Make every board behave like an idle processor: whenever its
     * bus-monitor interrupt line rises, a service pass is scheduled.
     * Use when driving controllers directly (no CPU models attached);
     * TraceCpu/ProgramCpu objects override these hooks while running.
     */
    void attachIdleServicers();

    /**
     * When using the internal demand translator: declare user pages
     * non-shared (Section 5.4 hint). Read misses to user pages then
     * fetch read-private, eliminating later write upgrades.
     */
    void setUserPrivateHint(bool enabled);

    /**
     * Arm a fault injector over the whole machine: bus transactions,
     * every board's interrupt FIFO and delivery path, and every
     * board's block copier. May be called at most once, before any
     * traffic. With DmaBurst armed, a DMA engine is attached that
     * writes scratch frames (inside the translator's reserved low
     * region, never cached) mid-run. Returns the injector for stats.
     */
    fault::FaultInjector &
    enableFaultInjection(const fault::FaultSchedule &schedule);

    /** The armed injector, or null if none. */
    fault::FaultInjector *faultInjector() { return injector_.get(); }

    /**
     * Install a coherence-invariant checker over the bus: online
     * single-owner checking per transaction plus checkFull() sweeps
     * at quiescence. May be called at most once.
     */
    check::CoherenceChecker &
    enableCoherenceChecker(check::CheckerOptions options = {});

    /** The installed checker, or null if none. */
    check::CoherenceChecker *coherenceChecker() { return checker_.get(); }

    /**
     * Install the failstop-recovery subsystem: a FailureDetector over
     * the bus, the reclaim coordinator, and the dead-owner oracle on
     * every controller (so stranded waits abandon with a structured
     * DeadOwnerError instead of retrying forever). If a coherence
     * checker is (or later becomes) installed, every completed reclaim
     * triggers an immediate single-owner sweep. May be called at most
     * once, before any traffic.
     */
    recover::RecoveryManager &
    enableRecovery(recover::RecoveryConfig options = {});

    /** The installed recovery manager, or null if none. */
    recover::RecoveryManager *recoveryManager() { return recovery_.get(); }
    const recover::RecoveryManager *recoveryManager() const
    {
        return recovery_.get();
    }

    /**
     * Install an NVRAM-shadowed frame checkpoint: a cache-page-granule
     * backing::PageStore kept a live shadow of memory by a
     * FrameCheckpointer snapshotting every completed ownership
     * transfer on the bus (zero simulated cost — the memory board
     * mirrors writes into stable storage). If recovery is installed
     * (before or after), it restores reclaimed frames from this store,
     * driving recover.pages_lost to zero by construction. @p asid is
     * the reserved space id frames are keyed under. May be called at
     * most once, before any traffic.
     */
    backing::PageStore &enableFrameCheckpoint(Asid asid = 0xFE);

    /** The installed checkpointer, or null if none. */
    backing::FrameCheckpointer *frameCheckpointer()
    {
        return checkpointer_.get();
    }

    /**
     * Arm the observability subsystem: a per-board ring-buffer event
     * tracer over the bus, every monitor/FIFO, every controller's miss
     * phases and block copier, and (if installed) the recovery
     * coordinator — plus, unless disabled in @p config, a MissProfiler
     * folding the traced phases into per-miss breakdowns. Pure
     * observation: no event is scheduled and no RNG is drawn, so
     * simulated time is bit-identical with tracing on or off. May be
     * called at most once, before any traffic; if recovery is enabled
     * later it is wired onto the "recover" track automatically.
     */
    obs::EventTracer &enableTracing(obs::TraceConfig config = {});

    /** The armed tracer, or null if tracing is off. */
    obs::EventTracer *tracer() { return tracer_.get(); }
    const obs::EventTracer *tracer() const { return tracer_.get(); }

    /** The attached miss profiler, or null. */
    obs::MissProfiler *missProfiler() { return profiler_.get(); }
    const obs::MissProfiler *missProfiler() const
    {
        return profiler_.get();
    }

    /**
     * Failstop board @p index at tick @p at: its CPU halts at the next
     * instruction boundary and its controller software dies, but its
     * bus monitor keeps driving the bus from stale table state — the
     * hazard the recovery subsystem exists to clear. Without
     * enableRecovery() the stale Protect entries wedge every later
     * access to the dead board's pages (surfaced as DeadOwnerErrors
     * when the controllers' deadOwnerTimeoutNs expires).
     */
    void killBoard(std::uint32_t index, Tick at);

    /**
     * Hot-rejoin board @p index at tick @p at: the monitor is unmasked
     * with a cleared table, the controller restarts cold, and the CPU
     * resumes its trace. If a reclaim is in flight at @p at the rejoin
     * defers until it completes.
     */
    void rejoinBoard(std::uint32_t index, Tick at);

    /**
     * Configure the livelock watchdog on every controller: a starving
     * operation (more than @p maxRetries consecutive aborts) fires
     * @p handler once (default: a warning) and keeps retrying.
     * A cap of 0 disables the watchdog.
     */
    void setWatchdog(std::uint64_t maxRetries,
                     proto::CacheController::WatchdogHandler handler = {});

    /** gem5-style dump of every component's statistics. */
    void dumpStats(std::ostream &os) const;

    /**
     * Aggregate every component's StatGroup into a StatRegistry and
     * serialize it: {"bus": {...}, "cpu0": {...}, ...}. Histograms
     * (e.g. the bus arbitration queue-delay distribution) serialize
     * as objects with samples/mean/min/max/underflow/buckets.
     */
    Json statsJson() const;

  private:
    /** Rejoin body (defers itself while a reclaim is in flight). */
    void doRejoin(std::uint32_t index);
    /** Turn one scheduled partial-failure spec into onset/clear events. */
    void armPartialFault(const fault::PartialFaultSpec &spec);

    VmpConfig cfg_;
    EventQueue events_;
    mem::PhysMem memory_;
    mem::VmeBus bus_;
    std::unique_ptr<proto::DemandTranslator> ownedTranslator_;
    proto::Translator *translator_;
    std::vector<std::unique_ptr<ProcessorBoard>> boards_;
    std::unique_ptr<fault::FaultInjector> injector_;
    std::unique_ptr<check::CoherenceChecker> checker_;
    std::unique_ptr<recover::RecoveryManager> recovery_;
    std::unique_ptr<backing::PageStore> checkpointStore_;
    std::unique_ptr<backing::FrameCheckpointer> checkpointer_;
    std::unique_ptr<obs::EventTracer> tracer_;
    std::unique_ptr<obs::MissProfiler> profiler_;
    /** Raw CPU handles while runTraces is in flight (for kill/rejoin
     *  events scheduled before or during the run). */
    std::vector<cpu::TraceCpu *> activeCpus_;
    /** Track id recovery events land on (valid while tracer_ != null). */
    std::uint16_t recoverTrack_ = 0;
};

} // namespace vmp::core

#endif // VMP_CORE_SYSTEM_HH
