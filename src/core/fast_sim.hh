/**
 * @file
 * FastCacheSim: the cold-start, single-cache, trace-driven simulator
 * behind Figure 4. It evaluates only the cache's tag behaviour (no bus,
 * no timing, no consistency), exactly like the ATUM-trace simulations
 * the paper credits to Agarwal, so multi-million-reference parameter
 * sweeps finish in milliseconds.
 */

#ifndef VMP_CORE_FAST_SIM_HH
#define VMP_CORE_FAST_SIM_HH

#include <cstdint>

#include "cache/cache.hh"
#include "trace/ref.hh"

namespace vmp::core
{

/** Results of one functional simulation. */
struct FastSimResult
{
    std::uint64_t refs = 0;
    std::uint64_t misses = 0;
    std::uint64_t supervisorRefs = 0;
    std::uint64_t supervisorMisses = 0;

    double
    missRatio() const
    {
        return refs == 0
            ? 0.0
            : static_cast<double>(misses) / static_cast<double>(refs);
    }

    double
    supervisorMissShare() const
    {
        return misses == 0
            ? 0.0
            : static_cast<double>(supervisorMisses) /
                static_cast<double>(misses);
    }

    /** Merge another trace's results (for averaging across traces). */
    FastSimResult &operator+=(const FastSimResult &other);
};

/** Functional (timeless) cache simulator. */
class FastCacheSim
{
  public:
    /** @param config geometry; storeData is forced off. */
    explicit FastCacheSim(cache::CacheConfig config);

    /** Present one reference; returns true on miss. */
    bool step(const trace::MemRef &ref);

    /** Drain an entire source, cold-start. */
    FastSimResult run(trace::RefSource &source);

    /**
     * Clear the statistics but keep the cache contents: subsequent
     * references are measured warm-start. The paper's Figure 4 is
     * explicitly cold-start; the warm variant quantifies how much of
     * the measured miss ratio is compulsory misses of the short
     * traces.
     */
    void resetStats();

    const cache::Cache &cache() const { return cache_; }
    const FastSimResult &result() const { return result_; }

  private:
    cache::Cache cache_;
    FastSimResult result_;
};

} // namespace vmp::core

#endif // VMP_CORE_FAST_SIM_HH
