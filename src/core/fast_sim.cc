#include "core/fast_sim.hh"

namespace vmp::core
{

FastSimResult &
FastSimResult::operator+=(const FastSimResult &other)
{
    refs += other.refs;
    misses += other.misses;
    supervisorRefs += other.supervisorRefs;
    supervisorMisses += other.supervisorMisses;
    return *this;
}

FastCacheSim::FastCacheSim(cache::CacheConfig config)
    : cache_((config.storeData = false, config))
{
}

bool
FastCacheSim::step(const trace::MemRef &ref)
{
    ++result_.refs;
    if (ref.supervisor)
        ++result_.supervisorRefs;

    const auto res = cache_.access(ref.asid, ref.vaddr, ref.isWrite(),
                                   ref.supervisor);
    if (res.hit)
        return false;

    ++result_.misses;
    if (ref.supervisor)
        ++result_.supervisorMisses;

    // Uniprocessor functional model: every fill is fully permissive
    // and exclusive, so only tag (NoMatch) misses recur.
    if (res.miss == cache::MissKind::NoMatch) {
        cache_.fill(res.suggestedVictim,
                    cache_.tagFor(ref.asid, ref.vaddr),
                    static_cast<cache::SlotFlags>(
                        cache::FlagExclusive | cache::FlagSupWritable |
                        cache::FlagUserReadable |
                        cache::FlagUserWritable));
    }
    return true;
}

void
FastCacheSim::resetStats()
{
    result_ = FastSimResult{};
}

FastSimResult
FastCacheSim::run(trace::RefSource &source)
{
    trace::MemRef ref;
    while (source.next(ref))
        step(ref);
    return result_;
}

} // namespace vmp::core
