/**
 * @file
 * PagedVmpSystem: the full software stack of the paper in one object —
 * the multiprocessor machine of VmpSystem with translation served by
 * the real two-level page tables of vm::VmSystem instead of the
 * demand-allocating stub. Every user-page touch demand-pages through
 * the fault handler, page-table walks nest through the caches, and the
 * pageout daemon reclaims frames under memory pressure, all while the
 * ownership protocol keeps everything coherent.
 */

#ifndef VMP_CORE_PAGED_SYSTEM_HH
#define VMP_CORE_PAGED_SYSTEM_HH

#include <memory>

#include "core/system.hh"
#include "vm/vm_system.hh"

namespace vmp::core
{

/** VmpSystem + VmSystem, wired. */
class PagedVmpSystem
{
  public:
    explicit PagedVmpSystem(const VmpConfig &config,
                            const vm::VmConfig &vm_config = {});

    VmpSystem &machine() { return *machine_; }
    vm::VmSystem &vm() { return *vm_; }
    proto::CacheController &controller(std::size_t index)
    {
        return machine_->controller(index);
    }

    /** Run trace CPUs (as VmpSystem::runTraces) with demand paging. */
    RunResult runTraces(const std::vector<trace::RefSource *> &sources)
    {
        return machine_->runTraces(sources);
    }

  private:
    vm::VmTranslator translator_;
    std::unique_ptr<VmpSystem> machine_;
    std::unique_ptr<vm::VmSystem> vm_;
};

} // namespace vmp::core

#endif // VMP_CORE_PAGED_SYSTEM_HH
