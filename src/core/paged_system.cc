#include "core/paged_system.hh"

namespace vmp::core
{

PagedVmpSystem::PagedVmpSystem(const VmpConfig &config,
                               const vm::VmConfig &vm_config)
{
    machine_ = std::make_unique<VmpSystem>(config, &translator_);
    vm_ = std::make_unique<vm::VmSystem>(machine_->events(),
                                         machine_->memory(), vm_config);
    translator_.bind(*vm_);
    for (std::size_t i = 0; i < machine_->processors(); ++i)
        vm_->attach(machine_->controller(i));
}

} // namespace vmp::core
