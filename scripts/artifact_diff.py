#!/usr/bin/env python3
"""Diff two BENCH_*.json artifacts, ignoring the run-environment bits.

Usage: artifact_diff.py GOLDEN CURRENT [--rtol X] [--atol Y]

The artifact schema (bench/bench_util.hh) is deterministic for a fixed
seed except for the "meta" object (git sha, compiler, thread count) and
the "wall_clock_s" stopwatch, which this tool skips. As of schema v1.5
the "meta" *key set* is still compared — the values are volatile per
build, but a provenance field silently disappearing (or appearing only
in one artifact) is a schema change and fails the gate. Numbers compare
with a relative tolerance so a golden survives harmless float-printing
differences; everything else must match exactly. Exit status 0 = same,
1 = regression (each difference is printed with its JSON path).
"""

import argparse
import json
import sys

IGNORED_KEYS = {"host", "wall_clock_s"}
# Values are build-volatile; only the key set is compared.
KEYSET_ONLY_KEYS = {"meta"}


def compare_keyset(golden, current, path, diffs):
    if not isinstance(golden, dict) or not isinstance(current, dict):
        if type(golden) is not type(current):
            diffs.append(f"{path}: type {type(golden).__name__} != "
                         f"{type(current).__name__}")
        return
    for key in sorted(set(golden) ^ set(current)):
        where = "golden" if key in golden else "current"
        diffs.append(f"{path}.{key}: key only in {where}")


def compare(golden, current, path, rtol, atol, diffs):
    if isinstance(golden, dict) and isinstance(current, dict):
        for key in sorted(set(golden) | set(current)):
            if key in IGNORED_KEYS:
                continue
            if key in KEYSET_ONLY_KEYS:
                if key in golden and key in current:
                    compare_keyset(golden[key], current[key],
                                   f"{path}.{key}" if path else key,
                                   diffs)
                else:
                    where = ("golden" if key in golden else "current")
                    diffs.append(f"{key}: key only in {where}")
                continue
            sub = f"{path}.{key}" if path else key
            if key not in golden:
                diffs.append(f"{sub}: unexpected key (not in golden)")
            elif key not in current:
                diffs.append(f"{sub}: missing key")
            else:
                compare(golden[key], current[key], sub, rtol, atol,
                        diffs)
    elif isinstance(golden, list) and isinstance(current, list):
        if len(golden) != len(current):
            diffs.append(f"{path}: length {len(golden)} != "
                         f"{len(current)}")
            return
        for i, (g, c) in enumerate(zip(golden, current)):
            compare(g, c, f"{path}[{i}]", rtol, atol, diffs)
    elif isinstance(golden, bool) or isinstance(current, bool):
        # bool is an int subclass; keep it out of the numeric branch.
        if golden is not current:
            diffs.append(f"{path}: {golden} != {current}")
    elif isinstance(golden, (int, float)) and \
            isinstance(current, (int, float)):
        if abs(golden - current) > atol + rtol * abs(golden):
            diffs.append(f"{path}: {golden!r} != {current!r}")
    elif golden != current:
        diffs.append(f"{path}: {golden!r} != {current!r}")


def main():
    parser = argparse.ArgumentParser(
        description="diff two bench artifacts")
    parser.add_argument("golden")
    parser.add_argument("current")
    parser.add_argument("--rtol", type=float, default=1e-9)
    parser.add_argument("--atol", type=float, default=1e-12)
    args = parser.parse_args()

    with open(args.golden) as f:
        golden = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    diffs = []
    compare(golden, current, "", args.rtol, args.atol, diffs)
    if diffs:
        print(f"{args.current} regressed against {args.golden}:")
        for diff in diffs[:50]:
            print(f"  {diff}")
        if len(diffs) > 50:
            print(f"  ... and {len(diffs) - 50} more")
        return 1
    print(f"{args.current} matches {args.golden}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
