#!/bin/sh
# Tier-1 verification: build everything, run the full unit-test suite,
# then rebuild the base simulation library with AddressSanitizer +
# UndefinedBehaviorSanitizer (cmake -DVMP_SANITIZE=address,undefined)
# and rerun the core tests under it. Fails on the first error.
#
# Usage: scripts/tier1.sh [build-dir] [sanitize-build-dir]
set -e

repo=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build=${1:-"$repo/build"}
sanitize=${2:-"$repo/build-sanitize"}
jobs=$(nproc 2>/dev/null || echo 2)

echo "== tier1: configure + build ($build) =="
cmake -B "$build" -S "$repo"
cmake --build "$build" -j "$jobs"

echo "== tier1: full test suite (torture matrix excluded) =="
ctest --test-dir "$build" --output-on-failure -j "$jobs" -LE torture

echo "== tier1: sanitizer build ($sanitize) =="
cmake -B "$sanitize" -S "$repo" -DVMP_SANITIZE=address,undefined
cmake --build "$sanitize" -j "$jobs" \
    --target test_sim test_mem test_artifact bench_table1

echo "== tier1: sanitized core tests =="
"$sanitize/tests/test_sim"
"$sanitize/tests/test_mem"
"$sanitize/tests/test_artifact"

echo "== tier1: OK =="
