#!/bin/sh
# Run one bench binary in a scratch directory and diff the BENCH_*.json
# it writes against the committed golden (scripts/artifact_diff.py).
# Registered as the "golden"-labeled ctest entries; any change to a
# deterministic artifact section fails the gate until the golden is
# regenerated on purpose (run the bench, inspect, copy over the file
# in tests/goldens/).
#
# Usage: golden_gate.sh BENCH_BINARY GOLDEN_JSON [bench args...]
set -e

bench=$1
golden=$2
shift 2
diff_py=$(CDPATH= cd -- "$(dirname -- "$0")" && pwd)/artifact_diff.py

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
out=$tmp/$(basename "$golden")

"$bench" --json-out "$out" "$@" >/dev/null
python3 "$diff_py" "$golden" "$out"
