#!/usr/bin/env python3
"""Re-run one bench binary over several seed bases and aggregate.

Usage: seed_sweep.py BENCH_BINARY [--seeds N] [--seed-base B]
                     [--json-out OUT] [-- extra bench args]

The stochastic benches (bench_fault, bench_recover) derive every
workload and injector seed from --seed-base, so a single run is one
sample from the seed distribution. This driver runs the bench N times
with seed bases B, B+1000, B+2000, ... (spaced far apart so the
per-run seed offsets never collide), collects each run's BENCH_*.json
artifact, and emits one aggregate artifact whose metrics carry
mean / ci95 / min / max columns per numeric metric. The 95% CI uses
Student's t on n-1 degrees of freedom (two-sided), so it is honest for
the small N this is meant for.

The aggregate keeps the vmp-bench-artifact schema (v1.5): same
"results" shape as the underlying bench, label-for-label, with each
numeric metric M replaced by M_mean / M_ci95 / M_min / M_max. Gates in
CI can diff it with artifact_diff.py --rtol like any other artifact.

Exit status: 0 on success, 1 if any bench run fails (the bench's own
acceptance gates are part of its exit status and are honored).
"""

import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

# Two-sided 95% Student's t critical values, indexed by degrees of
# freedom (1-based); runs longer than 30 seeds fall back to the normal
# approximation.
T95 = [None, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
       2.262, 2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110,
       2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
       2.052, 2.048, 2.045, 2.042]
T95_INF = 1.960


def t95(df):
    if df < 1:
        return 0.0
    return T95[df] if df < len(T95) else T95_INF


def numeric_leaves(node, path=""):
    """Yield (dotted-path, value) for every numeric leaf."""
    if isinstance(node, bool):
        return
    if isinstance(node, (int, float)):
        yield path, float(node)
    elif isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            yield from numeric_leaves(value, sub)
    # Lists (histogram buckets etc.) are run-shape data, not metrics.


def aggregate(samples):
    """mean/ci95/min/max of one metric across runs."""
    n = len(samples)
    mean = sum(samples) / n
    if n > 1:
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
        ci95 = t95(n - 1) * math.sqrt(var / n)
    else:
        ci95 = 0.0
    return {"mean": mean, "ci95": ci95,
            "min": min(samples), "max": max(samples)}


def main():
    parser = argparse.ArgumentParser(
        description="seed-sweep a bench binary and aggregate its "
                    "artifact across runs")
    parser.add_argument("bench", help="bench binary to run")
    parser.add_argument("--seeds", type=int, default=5,
                        help="number of seed bases (default 5)")
    parser.add_argument("--seed-base", type=int, default=1000,
                        help="first seed base (default 1000)")
    parser.add_argument("--seed-stride", type=int, default=1000,
                        help="spacing between seed bases "
                             "(default 1000)")
    parser.add_argument("--json-out", default=None,
                        help="aggregate artifact path (default "
                             "BENCH_<bench>_seedsweep.json)")
    parser.add_argument("extra", nargs="*",
                        help="extra args forwarded to the bench")
    args = parser.parse_args()

    runs = []
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        for k in range(args.seeds):
            base = args.seed_base + k * args.seed_stride
            out = os.path.join(tmp, f"run{k}.json")
            cmd = [args.bench, "--json-out", out,
                   "--seed-base", str(base)] + args.extra
            print(f"[seed_sweep] run {k + 1}/{args.seeds} "
                  f"(seed base {base})", flush=True)
            proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
            if proc.returncode != 0:
                print(f"[seed_sweep] FAIL: seed base {base} exited "
                      f"{proc.returncode}")
                failures += 1
            with open(out) as f:
                runs.append(json.load(f))

    first = runs[0]
    bench_name = first.get("bench", os.path.basename(args.bench))
    by_label = []
    for i, row in enumerate(first.get("results", [])):
        label = row.get("label", f"result[{i}]")
        series = {}
        for run in runs:
            result = run["results"][i]
            if result.get("label") != label:
                print(f"[seed_sweep] result order mismatch at "
                      f"{label}; aborting")
                return 1
            for path, value in numeric_leaves(
                    result.get("metrics", {})):
                series.setdefault(path, []).append(value)
        metrics = {}
        for path, samples in sorted(series.items()):
            stats = aggregate(samples)
            for stat, value in stats.items():
                metrics[f"{path}_{stat}"] = value
        by_label.append({"label": label,
                         "config": row.get("config", {}),
                         "metrics": metrics})

    doc = {
        "schema": first.get("schema", "vmp-bench-artifact"),
        "schema_version": first.get("schema_version", 1.5),
        "bench": f"{bench_name}_seedsweep",
        "meta": dict(first.get("meta", {}),
                     seeds=args.seeds,
                     seed_base=args.seed_base,
                     seed_stride=args.seed_stride),
        "results": by_label,
        "notes": [
            f"aggregate of {args.seeds} runs of {bench_name} with "
            f"seed bases {args.seed_base}..+{args.seed_stride}*"
            f"{args.seeds - 1}",
            "each numeric metric M becomes M_mean/M_ci95/M_min/"
            "M_max (95% Student's t CI)",
        ],
        "host": {"failed_runs": failures},
    }
    out_path = args.json_out or f"BENCH_{bench_name}_seedsweep.json"
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"[seed_sweep] wrote {out_path}")

    # Headline table: the first few metrics of each label.
    for row in by_label:
        shown = 0
        print(f"  {row['label']}:")
        for key in sorted(row["metrics"]):
            if not key.endswith("_mean"):
                continue
            base_key = key[:-5]
            mean = row["metrics"][key]
            ci = row["metrics"].get(base_key + "_ci95", 0.0)
            print(f"    {base_key}: {mean:.6g} +/- {ci:.3g}")
            shown += 1
            if shown >= 6:
                break
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
